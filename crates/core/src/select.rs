//! The OLAP Array consolidation algorithm with selection (§4.2).
//!
//! 1. For each selected dimension, resolve each predicate to a sorted
//!    index list and merge (union within a predicate's IN-list,
//!    intersection across conjunctive predicates) into one *final
//!    index list* per dimension. A predicate-shape planner picks the
//!    access method per predicate: point lookups and small IN-lists
//!    probe the attribute B-tree; wide ranges and large IN-lists go
//!    through the hierarchical bitmap index
//!    ([`molap_bitmap::StoredHbi`]), which resolves them with
//!    O(fanout · log V) bitmap reads instead of one B-tree descent per
//!    qualifying value.
//! 2. The cross-product of the final lists is generated **on the fly**
//!    (no memory is allocated for cross-product elements), ordered by
//!    chunk number and, within a chunk, by increasing chunk offset:
//!    * chunks that contain no cross-product element are never read;
//!    * chunks are visited in disk-layout order;
//!    * each probe is a binary search over the chunk's sorted offsets,
//!      resumed from the previous probe's position
//!      ([`molap_array::CompressedChunk::probe_from`]) — the paper's
//!      third optimization.
//! 3. Hits are mapped through the IndexToIndex arrays and aggregated
//!    into the result cube, exactly as in the §4.1 phase 2.

use molap_array::{Chunk, Shape};

use crate::adt::OlapArray;
use crate::consolidate::{make_cube, phase1, BuildResultBtrees, GroupMap};
use crate::error::Result;
use crate::query::{AttrRef, Pred, Query};
use crate::result::ConsolidationResult;
use crate::util::{intersect_sorted, union_sorted};

/// How the selection planner picks the index per predicate.
///
/// Process-local and not persisted: reopened arrays start on `Auto`.
/// The force modes exist for benchmarking and for pinning a plan when
/// the heuristic misfires on an unusual value distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PlannerMode {
    /// Route by predicate shape (the thresholds below).
    Auto = 0,
    /// Every predicate probes the B-tree (the pre-PR-10 plan).
    ForceBtree = 1,
    /// Every predicate probes the hierarchical bitmap index.
    ForceHbi = 2,
}

impl PlannerMode {
    pub(crate) fn from_u8(v: u8) -> PlannerMode {
        match v {
            1 => PlannerMode::ForceBtree,
            2 => PlannerMode::ForceHbi,
            _ => PlannerMode::Auto,
        }
    }
}

/// `Auto` routes a range to the HBI once it spans at least
/// `max(8, num_values / 8)` distinct attribute values. The B-tree side
/// scans (and sorts) one entry per selected row — cost proportional to
/// selectivity — while the aligned cover reads a near-constant number
/// of whole-dimension bitmaps, so the crossover sits at a *fraction*
/// of the domain (~1/8 measured in BENCH_PR10), with a floor of 8
/// below which a couple of B-tree descents always win.
const HBI_MIN_RANGE_WIDTH: usize = 8;
const HBI_RANGE_FRACTION: usize = 8;
/// `Auto` routes an IN-list to the HBI once it carries at least
/// `max(8, num_values / 64)` values. Each B-tree probe is a separate
/// descent plus an O(list) re-merge (quadratic in total), while the
/// HBI pays one leaf-bitmap read per value — its crossover is far
/// lower than the range one (~1/64 measured in BENCH_PR10).
const HBI_MIN_IN_VALUES: usize = 8;
const HBI_IN_FRACTION: usize = 64;

/// One dimension's selected indices, pre-split by chunk coordinate.
pub(crate) struct DimProbe {
    /// Groups in ascending chunk-coordinate order; each group's indices
    /// ascend (so within-chunk offsets ascend too).
    pub(crate) groups: Vec<ChunkGroup>,
}

pub(crate) struct ChunkGroup {
    /// Chunk-grid coordinate along this dimension.
    pub(crate) chunk_coord: u32,
    /// Selected array indices in this chunk slab, ascending.
    pub(crate) indices: Vec<u32>,
}

/// Computes the merged, sorted final index list for dimension `d`, or
/// `None` when the dimension carries no selection (all indices pass).
pub(crate) fn final_index_list(
    adt: &OlapArray,
    query: &Query,
    d: usize,
) -> Result<Option<Vec<u32>>> {
    let sels = query.selections.get(d).map_or(&[][..], Vec::as_slice);
    if sels.is_empty() {
        return Ok(None);
    }
    let mode = adt.planner_mode();
    let stats = adt.pool().stats();
    let mut acc: Option<Vec<u32>> = None;
    for sel in sels {
        let di = adt.dim_indexes(d);
        let (btree, hbi) = match sel.attr {
            AttrRef::Key => (&di.key_btree, &di.key_hbi),
            AttrRef::Level(l) => (&di.attr_btrees[l], &di.attr_hbis[l]),
        };
        // Predicate-shape routing: point/small-IN stays on the B-tree,
        // wide ranges and large IN-lists resolve through the HBI.
        // `range_width` is a catalog-only estimate (no I/O).
        let use_hbi = match mode {
            PlannerMode::ForceBtree => false,
            PlannerMode::ForceHbi => true,
            PlannerMode::Auto => match &sel.pred {
                Pred::In(values) => {
                    values.len() >= HBI_MIN_IN_VALUES.max(hbi.num_values() / HBI_IN_FRACTION)
                }
                Pred::Range { lo, hi } => {
                    hbi.range_width(*lo, *hi)
                        >= HBI_MIN_RANGE_WIDTH.max(hbi.num_values() / HBI_RANGE_FRACTION)
                }
            },
        };
        let list: Vec<u32> = if use_hbi {
            stats.planner_route_hbi();
            let bm = match &sel.pred {
                // Pred::In's canonical (sorted, deduped) invariant
                // matches fetch_in's contract.
                Pred::In(values) => hbi.fetch_in(values)?,
                Pred::Range { lo, hi } => hbi.fetch_range(*lo, *hi)?,
            };
            // Leaf bitmaps are keyed by array position, so the set
            // bits come out already in ascending index order.
            let mut list = Vec::new();
            bm.ones_into(&mut list);
            list
        } else {
            stats.planner_route_btree();
            match &sel.pred {
                // Union of the index lists of the predicate's values;
                // scan_eq returns ascending rows (bulk-loaded in row
                // order).
                Pred::In(values) => {
                    let mut list: Vec<u32> = Vec::new();
                    for &value in values {
                        let rows: Vec<u32> = btree
                            .scan_eq(value)?
                            .into_iter()
                            .map(|r| r as u32)
                            .collect();
                        list = union_sorted(&list, &rows);
                    }
                    list
                }
                // One range scan; rows come back in key order, so
                // re-sort into index order before merging.
                Pred::Range { lo, hi } => {
                    let mut rows: Vec<u32> = btree
                        .scan_range(*lo, *hi)?
                        .into_iter()
                        .map(|(_, r)| r as u32)
                        .collect();
                    rows.sort_unstable();
                    rows.dedup();
                    rows
                }
            }
        };
        acc = Some(match acc {
            None => list,
            Some(prev) => intersect_sorted(&prev, &list),
        });
    }
    Ok(acc.map(|mut v| {
        v.dedup();
        v
    }))
}

fn make_probe(adt: &OlapArray, d: usize, list: Option<Vec<u32>>) -> DimProbe {
    let shape = adt.array().shape();
    let indices: Vec<u32> = match list {
        Some(v) => v,
        None => (0..shape.dims()[d]).collect(),
    };
    let mut groups: Vec<ChunkGroup> = Vec::new();
    for idx in indices {
        let cc = shape.chunk_coord(d, idx);
        match groups.last_mut() {
            Some(g) if g.chunk_coord == cc => g.indices.push(idx),
            _ => groups.push(ChunkGroup {
                chunk_coord: cc,
                indices: vec![idx],
            }),
        }
    }
    DimProbe { groups }
}

/// The §4.2 algorithm.
pub(crate) fn consolidate_with_selection(
    adt: &OlapArray,
    query: &Query,
) -> Result<ConsolidationResult> {
    let (_, cube) = consolidate_with_selection_cube_opt(adt, query, BuildResultBtrees::No)?;
    cube.into_result(&query.aggs)
}

/// Step 1 of §4.2 for every dimension: the final index lists, split by
/// chunk coordinate. The flag is true when some dimension selected
/// nothing (the whole query result is empty — no chunk qualifies).
pub(crate) fn build_probes(adt: &OlapArray, query: &Query) -> Result<(Vec<DimProbe>, bool)> {
    let n = adt.array().shape().n_dims();
    let mut probes = Vec::with_capacity(n);
    let mut any_empty = false;
    for d in 0..n {
        let probe = make_probe(adt, d, final_index_list(adt, query, d)?);
        any_empty |= probe.groups.is_empty();
        probes.push(probe);
    }
    Ok((probes, any_empty))
}

/// The qualifying chunks, in ascending chunk-number (= disk) order.
/// Each entry carries the per-dimension group cursor selecting which
/// [`ChunkGroup`] of each probe covers the chunk.
///
/// The list is chunk-granular (bounded by the array's chunk count);
/// the *cell* cross-product is still generated on the fly inside
/// [`eval_chunk`], as §4.2 requires.
pub(crate) fn candidate_chunks(shape: &Shape, probes: &[DimProbe]) -> Vec<(u64, Vec<usize>)> {
    let n = probes.len();
    if probes.iter().any(|p| p.groups.is_empty()) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut chunk_sel = vec![0usize; n]; // group cursor per dim
    'chunks: loop {
        let chunk_no: u64 = (0..n)
            .map(|d| probes[d].groups[chunk_sel[d]].chunk_coord as u64 * shape.chunk_stride(d))
            .sum();
        out.push((chunk_no, chunk_sel.clone()));
        // Advance the chunk odometer (row-major: ascending chunk_no).
        let mut d = n;
        loop {
            if d == 0 {
                break 'chunks;
            }
            d -= 1;
            if chunk_sel[d] + 1 < probes[d].groups.len() {
                chunk_sel[d] += 1;
                for x in chunk_sel.iter_mut().skip(d + 1) {
                    *x = 0;
                }
                break;
            }
            chunk_sel[d] = 0;
        }
    }
    out
}

/// Evaluates one qualifying chunk into `cube`, choosing the probe or
/// scan direction adaptively (extension beyond the paper's fixed probe
/// order): when the chunk's cross-product is larger than its valid-cell
/// count, probing every cross-product element costs more than scanning
/// the valid cells and testing membership per dimension.
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_chunk(
    adt: &OlapArray,
    chunk: &Chunk,
    probes: &[DimProbe],
    chunk_sel: &[usize],
    maps: &[GroupMap],
    ranks: &mut [u32],
    cube: &mut crate::result::ResultCube,
) {
    if chunk.valid_cells() == 0 {
        return;
    }
    let n = probes.len();
    let cross: u64 = (0..n)
        .map(|d| probes[d].groups[chunk_sel[d]].indices.len() as u64)
        .product();
    if cross > chunk.valid_cells() {
        scan_chunk(adt, chunk, probes, chunk_sel, maps, ranks, cube);
    } else {
        probe_chunk(adt, chunk, probes, chunk_sel, maps, ranks, cube);
    }
}

/// §4.2 core returning the positional result cube.
pub(crate) fn consolidate_with_selection_cube(
    adt: &OlapArray,
    query: &Query,
) -> Result<(Vec<GroupMap>, crate::result::ResultCube)> {
    consolidate_with_selection_cube_opt(adt, query, BuildResultBtrees::Yes)
}

/// §4.2 core with the result-B-tree opt-out exposed.
pub(crate) fn consolidate_with_selection_cube_opt(
    adt: &OlapArray,
    query: &Query,
    build: BuildResultBtrees,
) -> Result<(Vec<GroupMap>, crate::result::ResultCube)> {
    let (maps, _result_btrees) = phase1(adt, query, build)?;
    let mut cube = make_cube(&maps, adt.n_measures());
    let shape = adt.array().shape();

    // Step 1: final index lists.
    let (probes, any_empty) = build_probes(adt, query)?;

    if !any_empty {
        // Step 2: cross-product in (chunk number, chunk offset) order.
        let mut ranks = vec![0u32; maps.len()];
        for (chunk_no, chunk_sel) in candidate_chunks(shape, &probes) {
            let chunk = adt.array().read_chunk(chunk_no)?;
            eval_chunk(
                adt, &chunk, &probes, &chunk_sel, &maps, &mut ranks, &mut cube,
            );
        }
    }

    Ok((maps, cube))
}

/// The §4.2 scan-direction membership masks for one qualifying chunk:
/// per dimension, which within-chunk coordinates are selected.
pub(crate) fn chunk_membership(
    shape: &Shape,
    probes: &[DimProbe],
    chunk_sel: &[usize],
) -> Vec<Vec<bool>> {
    (0..probes.len())
        .map(|d| {
            let group = &probes[d].groups[chunk_sel[d]];
            let mut member = vec![false; shape.chunk_dims()[d] as usize];
            for &idx in &group.indices {
                member[shape.within_chunk(d, idx) as usize] = true;
            }
            member
        })
        .collect()
}

/// Prefetch-pipeline consumer for the §4.2 selection path: drains
/// decoded qualifying chunks from `pipe` and evaluates each in the
/// adaptive direction — scan-direction chunks go through a per-chunk
/// [`ChunkKernel`](crate::kernel::ChunkKernel) with the membership
/// masks folded into its remap tables, probe-direction chunks through
/// the §4.2 resumed binary probe.
pub(crate) fn selection_consumer(
    adt: &OlapArray,
    maps: &[GroupMap],
    probes: &[DimProbe],
    candidates: &[(u64, Vec<usize>)],
    pipe: &molap_array::ChunkPipeline,
) -> Result<crate::result::ResultCube> {
    use crate::kernel::ChunkKernel;
    use molap_array::diffseq::DiffSeqCursor;
    use molap_array::ChunkPayload;
    let shape = adt.array().shape();
    let limit = shape.chunk_cells() as u32;
    let mut cube = make_cube(maps, adt.n_measures());
    let mut ranks = vec![0u32; maps.len()];
    while let Some(item) = pipe.next_payload() {
        let (chunk_no, payload) = match item {
            Ok(delivered) => delivered,
            Err(e) => {
                pipe.shutdown();
                return Err(e.into());
            }
        };
        // Candidates ascend in chunk number (odometer order), so the
        // delivered chunk's selection cursor is a binary search away.
        let ci = candidates.binary_search_by_key(&chunk_no, |c| c.0).ok();
        let Some((_, chunk_sel)) = ci.and_then(|i| candidates.get(i)) else {
            return Err(crate::error::Error::Internal(
                "pipelined chunk missing from candidates".into(),
            ));
        };
        let cross: u64 = (0..probes.len())
            .map(|d| probes[d].groups[chunk_sel[d]].indices.len() as u64)
            .product();
        match payload {
            ChunkPayload::Chunk(chunk) => {
                if chunk.valid_cells() == 0 {
                    continue;
                }
                if cross > chunk.valid_cells() {
                    let membership = chunk_membership(shape, probes, chunk_sel);
                    let kernel = ChunkKernel::new(shape, maps, &cube, chunk_no, Some(&membership));
                    kernel.apply(&chunk, &mut cube);
                } else {
                    probe_chunk(adt, &chunk, probes, chunk_sel, maps, &mut ranks, &mut cube);
                }
            }
            ChunkPayload::DiffSeq(bytes) => {
                let mut cursor = match DiffSeqCursor::new(&bytes, limit) {
                    Ok(c) => c,
                    Err(e) => {
                        pipe.shutdown();
                        return Err(e.into());
                    }
                };
                if cursor.is_empty() {
                    continue;
                }
                if cross > cursor.len() as u64 {
                    // Scan direction streams: membership masks fold
                    // into the kernel tables, batches feed it directly.
                    let p = cursor.n_measures();
                    let membership = chunk_membership(shape, probes, chunk_sel);
                    let kernel = ChunkKernel::new(shape, maps, &cube, chunk_no, Some(&membership));
                    loop {
                        match cursor.next_batch() {
                            Ok(Some((offsets, values))) => {
                                kernel.apply_batch(offsets, values, p, &mut cube);
                            }
                            Ok(None) => break,
                            Err(e) => {
                                pipe.shutdown();
                                return Err(e.into());
                            }
                        }
                    }
                } else {
                    // Probe direction needs random access by offset —
                    // one of the paths that genuinely wants a Chunk.
                    let chunk = match ChunkPayload::DiffSeq(bytes).into_chunk(limit) {
                        Ok(c) => c,
                        Err(e) => {
                            pipe.shutdown();
                            return Err(e.into());
                        }
                    };
                    probe_chunk(adt, &chunk, probes, chunk_sel, maps, &mut ranks, &mut cube);
                }
            }
        }
    }
    Ok(cube)
}

/// Probes every cross-product element falling in `chunk`, aggregating
/// hits into `cube`.
#[allow(clippy::too_many_arguments)]
fn probe_chunk(
    adt: &OlapArray,
    chunk: &Chunk,
    probes: &[DimProbe],
    chunk_sel: &[usize],
    maps: &[GroupMap],
    ranks: &mut [u32],
    cube: &mut crate::result::ResultCube,
) {
    let shape = adt.array().shape();
    let n = probes.len();
    let lists: Vec<&[u32]> = (0..n)
        .map(|d| probes[d].groups[chunk_sel[d]].indices.as_slice())
        .collect();

    // Odometer over within-chunk index lists; offsets are generated in
    // increasing order, so the compressed probe cursor only moves
    // forward within the chunk.
    let mut pos = vec![0usize; n];
    // prefix[d] = sum of offset contributions of dims 0..=d.
    let mut prefix = vec![0u64; n];
    let contrib = |d: usize, idx: u32| shape.within_chunk(d, idx) as u64 * shape.cell_stride(d);
    for d in 0..n {
        let c = contrib(d, lists[d][0]);
        prefix[d] = if d == 0 { c } else { prefix[d - 1] + c };
    }

    let mut cursor = 0usize; // probe_from resume point (compressed chunks)
    loop {
        let offset = prefix[n - 1] as u32;
        let hit = match chunk {
            Chunk::Compressed(c) => {
                let (hit, next) = c.probe_from(offset, cursor);
                cursor = next;
                hit
            }
            Chunk::Dense(d) => d.probe(offset),
        };
        if let Some(values) = hit {
            for (g, map) in maps.iter().enumerate() {
                let idx = lists[map.dim][pos[map.dim]];
                ranks[g] = map.i2i[idx as usize];
            }
            cube.add(ranks, values);
        }
        // Advance odometer.
        let mut d = n;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            if pos[d] + 1 < lists[d].len() {
                pos[d] += 1;
                for p in pos.iter_mut().take(n).skip(d + 1) {
                    *p = 0;
                }
                for dd in d..n {
                    let c = contrib(dd, lists[dd][pos[dd]]);
                    prefix[dd] = if dd == 0 { c } else { prefix[dd - 1] + c };
                }
                break;
            }
            pos[d] = 0;
        }
    }
}

/// Scan-direction evaluation for one chunk: iterate its valid cells and
/// keep those whose every coordinate is selected. Used when the
/// cross-product outnumbers the valid cells.
#[allow(clippy::too_many_arguments)]
fn scan_chunk(
    adt: &OlapArray,
    chunk: &Chunk,
    probes: &[DimProbe],
    chunk_sel: &[usize],
    maps: &[GroupMap],
    ranks: &mut [u32],
    cube: &mut crate::result::ResultCube,
) {
    let shape = adt.array().shape();
    let n = probes.len();
    // Per-dimension membership over within-chunk coordinates, plus the
    // chunk's base coordinate for IndexToIndex lookups.
    let mut selected: Vec<Vec<bool>> = Vec::with_capacity(n);
    let mut base = Vec::with_capacity(n);
    for d in 0..n {
        let group = &probes[d].groups[chunk_sel[d]];
        let mut member = vec![false; shape.chunk_dims()[d] as usize];
        for &idx in &group.indices {
            member[shape.within_chunk(d, idx) as usize] = true;
        }
        selected.push(member);
        base.push(group.chunk_coord * shape.chunk_dims()[d]);
    }

    chunk.for_each_valid(|offset, values| {
        for (d, member) in selected.iter().enumerate() {
            let within = (offset as u64 / shape.cell_stride(d)) as u32 % shape.chunk_dims()[d];
            if !member[within as usize] {
                return;
            }
        }
        for (g, map) in maps.iter().enumerate() {
            let d = map.dim;
            let within = (offset as u64 / shape.cell_stride(d)) as u32 % shape.chunk_dims()[d];
            ranks[g] = map.i2i[(base[d] + within) as usize];
        }
        cube.add(ranks, values);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggValue;
    use crate::dimension::DimensionTable;
    use crate::query::{DimGrouping, Selection};
    use crate::result::Row;
    use molap_array::ChunkFormat;
    use molap_storage::{BufferPool, MemDisk};
    use std::sync::Arc;

    fn build() -> OlapArray {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 4096));
        // 6×6 cube, 3×2 chunks; store attr = key % 3, product attr = key % 2.
        let dims = vec![
            DimensionTable::build(
                "store",
                &[0, 1, 2, 3, 4, 5],
                vec![("s1", vec![0, 1, 2, 0, 1, 2])],
            )
            .unwrap(),
            DimensionTable::build(
                "product",
                &[0, 1, 2, 3, 4, 5],
                vec![("p1", vec![0, 1, 0, 1, 0, 1])],
            )
            .unwrap(),
        ];
        // Every cell valid: value = 10*x + y.
        let mut cells = Vec::new();
        for x in 0..6i64 {
            for y in 0..6i64 {
                cells.push((vec![x, y], vec![10 * x + y]));
            }
        }
        OlapArray::build(pool, dims, &[3, 2], ChunkFormat::ChunkOffset, cells, 1).unwrap()
    }

    fn naive(
        sel: impl Fn(i64, i64) -> bool,
        group: impl Fn(i64, i64) -> Vec<i64>,
    ) -> Vec<(Vec<i64>, i64)> {
        let mut map = std::collections::BTreeMap::new();
        for x in 0..6i64 {
            for y in 0..6i64 {
                if sel(x, y) {
                    *map.entry(group(x, y)).or_insert(0) += 10 * x + y;
                }
            }
        }
        map.into_iter().collect()
    }

    fn rows_of(res: &ConsolidationResult) -> Vec<(Vec<i64>, i64)> {
        res.rows()
            .iter()
            .map(|r| (r.keys.clone(), r.values[0].as_int().unwrap()))
            .collect()
    }

    #[test]
    fn selection_on_one_dimension() {
        let adt = build();
        // WHERE s1 = 1 GROUP BY s1, p1.
        let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Level(0)])
            .with_selection(0, Selection::eq(AttrRef::Level(0), 1));
        let res = adt.consolidate(&q).unwrap();
        let expect = naive(|x, _| x % 3 == 1, |x, y| vec![x % 3, y % 2]);
        assert_eq!(rows_of(&res), expect);
    }

    #[test]
    fn selection_on_both_dimensions() {
        let adt = build();
        // WHERE s1 = 2 AND p1 = 0, global sum.
        let q = Query::new(vec![DimGrouping::Drop, DimGrouping::Drop])
            .with_selection(0, Selection::eq(AttrRef::Level(0), 2))
            .with_selection(1, Selection::eq(AttrRef::Level(0), 0));
        let res = adt.consolidate(&q).unwrap();
        let expect: i64 = naive(|x, y| x % 3 == 2 && y % 2 == 0, |_, _| vec![])
            .into_iter()
            .map(|(_, v)| v)
            .sum();
        assert_eq!(
            res.rows(),
            &[Row {
                keys: vec![],
                values: vec![AggValue::Int(expect)]
            }]
        );
    }

    #[test]
    fn in_list_unions_index_lists() {
        let adt = build();
        let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop])
            .with_selection(0, Selection::in_list(AttrRef::Level(0), vec![0, 2]));
        let res = adt.consolidate(&q).unwrap();
        let expect = naive(|x, _| x % 3 != 1, |x, _| vec![x % 3]);
        assert_eq!(rows_of(&res), expect);
    }

    #[test]
    fn conjunction_on_same_dimension_intersects() {
        let adt = build();
        // s1 IN (0,1) AND key IN (0,1,2,3): keys {0,1,3,4} ∩ {0,1,2,3} = {0,1,3}.
        let q = Query::new(vec![DimGrouping::Key, DimGrouping::Drop])
            .with_selection(0, Selection::in_list(AttrRef::Level(0), vec![0, 1]))
            .with_selection(0, Selection::in_list(AttrRef::Key, vec![0, 1, 2, 3]));
        let res = adt.consolidate(&q).unwrap();
        assert_eq!(
            res.rows().iter().map(|r| r.keys[0]).collect::<Vec<_>>(),
            vec![0, 1, 3]
        );
    }

    #[test]
    fn empty_selection_yields_empty_result() {
        let adt = build();
        let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop])
            .with_selection(0, Selection::eq(AttrRef::Level(0), 99));
        let res = adt.consolidate(&q).unwrap();
        assert!(res.rows().is_empty());
    }

    #[test]
    fn selection_by_key() {
        let adt = build();
        let q = Query::new(vec![DimGrouping::Key, DimGrouping::Key])
            .with_selection(0, Selection::eq(AttrRef::Key, 4))
            .with_selection(1, Selection::eq(AttrRef::Key, 3));
        let res = adt.consolidate(&q).unwrap();
        assert_eq!(
            res.rows(),
            &[Row {
                keys: vec![4, 3],
                values: vec![AggValue::Int(43)]
            }]
        );
    }

    #[test]
    fn untouched_chunks_are_not_read() {
        let adt = build();
        let pool = adt.pool().clone();
        pool.clear().unwrap();
        let before = pool.stats().snapshot();
        // Selecting store keys 0..2, product keys 0..1 touches only
        // chunk (0,0) of the 2×3 chunk grid.
        let q = Query::new(vec![DimGrouping::Drop, DimGrouping::Drop])
            .with_selection(0, Selection::in_list(AttrRef::Key, vec![0, 1, 2]))
            .with_selection(1, Selection::in_list(AttrRef::Key, vec![0, 1]));
        let res = adt.consolidate(&q).unwrap();
        assert_eq!(res.total(), 1 + 10 + 11 + 20 + 21);
        let delta = pool.stats().snapshot().since(&before);
        // 36 cells * 12B = one page per chunk; 6 chunks total but only
        // 1 may be fetched (plus B-tree + i2i pages).
        assert!(
            delta.physical_reads < 6,
            "expected a small read count, got {delta:?}"
        );
    }

    #[test]
    fn sparse_cells_probe_misses() {
        // Only diagonal cells are valid; selection covers a row.
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 2048));
        let dims = vec![
            DimensionTable::build("a", &[0, 1, 2, 3], vec![("h", vec![0, 0, 1, 1])]).unwrap(),
            DimensionTable::build("b", &[0, 1, 2, 3], vec![("h", vec![0, 1, 0, 1])]).unwrap(),
        ];
        let cells: Vec<(Vec<i64>, Vec<i64>)> =
            (0..4i64).map(|i| (vec![i, i], vec![1 << i])).collect();
        let adt =
            OlapArray::build(pool, dims, &[2, 2], ChunkFormat::ChunkOffset, cells, 1).unwrap();
        // WHERE a.h = 0 (keys 0,1): hits diagonal cells (0,0) and (1,1).
        let q = Query::new(vec![DimGrouping::Drop, DimGrouping::Drop])
            .with_selection(0, Selection::eq(AttrRef::Level(0), 0));
        let res = adt.consolidate(&q).unwrap();
        assert_eq!(res.total(), 3);
    }

    #[test]
    fn scan_direction_matches_probe_direction() {
        // Sparse cube (12% dense) with a broad selection: the
        // cross-product per chunk exceeds the valid cells, forcing the
        // scan direction; a narrow selection forces the probe
        // direction. Both must match the naive answer.
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 4096));
        let dims = vec![
            DimensionTable::build(
                "a",
                &(0..12i64).collect::<Vec<_>>(),
                vec![("h", (0..12i64).map(|k| k % 3).collect())],
            )
            .unwrap(),
            DimensionTable::build(
                "b",
                &(0..12i64).collect::<Vec<_>>(),
                vec![("h", (0..12i64).map(|k| k % 4).collect())],
            )
            .unwrap(),
        ];
        let mut cells = Vec::new();
        for x in 0..12i64 {
            for y in 0..12i64 {
                if (x * 7 + y * 5) % 8 == 0 {
                    cells.push((vec![x, y], vec![x * 100 + y]));
                }
            }
        }
        let adt = OlapArray::build(
            pool,
            dims,
            &[6, 6],
            ChunkFormat::ChunkOffset,
            cells.clone(),
            1,
        )
        .unwrap();

        let naive_sum = |f: &dyn Fn(i64, i64) -> bool| -> i64 {
            cells
                .iter()
                .filter(|(k, _)| f(k[0], k[1]))
                .map(|(_, m)| m[0])
                .sum()
        };

        // Broad: a.h IN (0,1) — 8 of 12 indices per chunk slab; the
        // cross product (8×6=48) exceeds any chunk's valid cells.
        let broad = Query::new(vec![DimGrouping::Drop, DimGrouping::Drop])
            .with_selection(0, Selection::in_list(AttrRef::Level(0), vec![0, 1]));
        assert_eq!(
            adt.consolidate(&broad).unwrap().total(),
            naive_sum(&|x, _| x % 3 != 2)
        );

        // Narrow: single keys — probe direction.
        let narrow = Query::new(vec![DimGrouping::Drop, DimGrouping::Drop])
            .with_selection(0, Selection::eq(AttrRef::Key, 7))
            .with_selection(1, Selection::in_list(AttrRef::Key, vec![1, 9]));
        assert_eq!(
            adt.consolidate(&narrow).unwrap().total(),
            naive_sum(&|x, y| x == 7 && (y == 1 || y == 9))
        );
    }

    #[test]
    fn works_on_dense_chunk_format() {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 2048));
        let dims =
            vec![DimensionTable::build("a", &[0, 1, 2], vec![("h", vec![0, 1, 0])]).unwrap()];
        let cells: Vec<(Vec<i64>, Vec<i64>)> = (0..3i64).map(|i| (vec![i], vec![i + 1])).collect();
        let adt = OlapArray::build(pool, dims, &[2], ChunkFormat::Dense, cells, 1).unwrap();
        let q = Query::new(vec![DimGrouping::Drop])
            .with_selection(0, Selection::eq(AttrRef::Level(0), 0));
        assert_eq!(adt.consolidate(&q).unwrap().total(), 1 + 3);
    }
}
