//! Parallel array consolidation — the paper's future work (§6):
//! "we believe that the large OLAP data set sizes require parallel
//! computing and we would like to investigate parallelization of OLAP
//! data structures and key OLAP operations".
//!
//! The array consolidation algorithm parallelizes naturally: chunks are
//! independent, the IndexToIndex mapping is read-only, and aggregation
//! into a *private* result cube per worker needs no synchronization —
//! cubes merge associatively at the end ([`crate::ResultCube::merge`]).
//! Workers share the buffer pool (frames are individually latched, the
//! page table is sharded) and the decoded-chunk cache, so this is
//! intra-operator parallelism on one store, not partitioned data.
//!
//! Selection queries (§4.2) parallelize the same way: the qualifying
//! chunks are enumerated once in chunk-number order, the list is split
//! into contiguous spans, and each worker runs the per-chunk
//! probe-or-scan evaluation over its span. The probe cursor's
//! monotonicity is per chunk, so chunk-granular partitioning preserves
//! it.

use molap_array::{shared_version_table, ChunkPipeline};

use crate::adt::OlapArray;
use crate::consolidate::{full_scan_consumer, make_cube, phase1, BuildResultBtrees};
use crate::error::{Error, Result};
use crate::query::Query;
use crate::result::{ConsolidationResult, ResultCube};
use crate::select::{build_probes, candidate_chunks, eval_chunk, selection_consumer, DimProbe};

/// Fewer qualifying chunks than this and [`consolidate_auto`] stays
/// sequential: thread spin-up would cost more than it saves.
const AUTO_MIN_CHUNKS_PER_WORKER: u64 = 4;

/// The §4.2 context a pipelined selection consumer needs: the
/// per-dimension probes plus the candidate chunks with their selected
/// within-chunk indices.
type SelectionPlan = (Vec<DimProbe>, Vec<(u64, Vec<usize>)>);

/// How the prefetch pipeline is staffed and bounded.
#[derive(Clone, Copy, Debug)]
pub struct PrefetchPlan {
    /// Prefetcher (read + decode) threads feeding the consumers.
    pub prefetchers: usize,
    /// Delivery-queue bound: decoded chunks held ahead of consumption.
    pub depth: usize,
    /// Deliver diff-seq chunks as validated raw bytes so consumers can
    /// stream (offset, measures) batches straight into the kernels
    /// instead of materializing a `Chunk` first. On by default; other
    /// formats always materialize. Turn off to benchmark the
    /// materialize-then-scan path on the same data.
    pub streaming: bool,
}

impl PrefetchPlan {
    /// A plan clamped to sane minimums.
    pub fn new(prefetchers: usize, depth: usize) -> Self {
        PrefetchPlan {
            prefetchers: prefetchers.max(1),
            depth: depth.max(1),
            streaming: true,
        }
    }

    /// The depth/staffing [`consolidate_auto`] picks for a job of
    /// `num_chunks` candidate chunks: two prefetchers (one faulting
    /// while one decodes) and a window deep enough to keep consumers
    /// fed without holding more than a small fraction of the array's
    /// decoded chunks in flight.
    pub fn auto(num_chunks: u64) -> Self {
        PrefetchPlan::new(2, (num_chunks / 4).clamp(4, 16) as usize)
    }

    /// Same plan with streaming delivery switched on or off.
    pub fn with_streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }
}

/// Like [`OlapArray::consolidate`], but with the chunk read+decode work
/// moved off the consumers onto a prefetch pipeline: `plan.prefetchers`
/// producer threads fault pages (multi-page chunks via one vectored
/// bypass read), decode, and publish through the shared chunk cache and
/// a bounded in-order delivery queue; `workers` consumers drain it and
/// aggregate with per-chunk kernels. Results are bit-identical to the
/// sequential paths for any worker/prefetcher count.
pub fn consolidate_pipelined(
    adt: &OlapArray,
    query: &Query,
    workers: usize,
    plan: PrefetchPlan,
) -> Result<ConsolidationResult> {
    consolidate_pipelined_cube(adt, query, workers, plan)?.into_result(&query.aggs)
}

/// [`consolidate_pipelined`] stopping at the positional result cube —
/// the form the result-cube cache stores.
pub(crate) fn consolidate_pipelined_cube(
    adt: &OlapArray,
    query: &Query,
    workers: usize,
    plan: PrefetchPlan,
) -> Result<ResultCube> {
    query.validate(adt.dims(), adt.n_measures())?;
    let workers = workers.max(1);
    let (maps, _result_btrees) = phase1(adt, query, BuildResultBtrees::No)?;
    let shape = adt.array().shape();

    // Candidate chunk list, in chunk (= disk) order. `selection` is
    // `None` for the §4.1 full scan (and for a provably-empty §4.2
    // selection, whose candidate list is empty).
    let (chunk_nos, selection): (Vec<u64>, Option<SelectionPlan>) = if query.has_selection() {
        let (probes, any_empty) = build_probes(adt, query)?;
        if any_empty {
            (Vec::new(), None)
        } else {
            let candidates = candidate_chunks(shape, &probes);
            let nos = candidates.iter().map(|c| c.0).collect();
            (nos, Some((probes, candidates)))
        }
    } else {
        ((0..shape.num_chunks()).collect(), None)
    };

    // Pin a chunk snapshot so a write batch committing mid-scan cannot
    // hand later chunks a newer array state than earlier ones saw: the
    // pipeline resolves every chunk against the version table as of
    // this generation, reading pinned pre-images where a writer has
    // since overwritten bytes in place.
    let snap = shared_version_table(adt.pool()).map(|vt| vt.begin_snapshot());
    let pipe = ChunkPipeline::new(adt.pool().clone(), chunk_nos, plan.depth)
        .with_snapshot(snap)
        .with_streaming(plan.streaming);
    let cubes = crossbeam::thread::scope(|scope| {
        for _ in 0..plan.prefetchers {
            scope.spawn(|_| pipe.run_worker(adt.array()));
        }
        let consumers: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|_| match &selection {
                    Some((probes, candidates)) => {
                        selection_consumer(adt, &maps, probes, candidates, &pipe)
                    }
                    None => full_scan_consumer(adt, &maps, &pipe),
                })
            })
            .collect();
        let cubes = consumers
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(Error::Internal("pipeline consumer panicked".into())))
            })
            .collect::<Result<Vec<_>>>();
        // Wake any parked prefetchers (error path, or producers waiting
        // on delivery-queue space) so the scope can join them.
        pipe.shutdown();
        cubes
    })
    .map_err(|_| Error::Internal("pipeline scope panicked".into()))??;

    let mut iter = cubes.into_iter();
    let mut total = iter
        .next()
        .unwrap_or_else(|| make_cube(&maps, adt.n_measures()));
    for cube in iter {
        total.merge(&cube)?;
    }
    Ok(total)
}

/// Like [`OlapArray::consolidate`], but evaluating chunks with
/// `threads` workers. Supports both the §4.1 (no selections) and §4.2
/// (with selections) algorithms; results are identical to the
/// sequential paths for any thread count.
pub fn consolidate_parallel(
    adt: &OlapArray,
    query: &Query,
    threads: usize,
) -> Result<ConsolidationResult> {
    query.validate(adt.dims(), adt.n_measures())?;
    let threads = threads.max(1);
    let (maps, _result_btrees) = phase1(adt, query, BuildResultBtrees::No)?;

    let cubes = if query.has_selection() {
        let (probes, any_empty) = build_probes(adt, query)?;
        if any_empty {
            Vec::new()
        } else {
            let candidates = candidate_chunks(adt.array().shape(), &probes);
            scan_selected_chunks(adt, &maps, &probes, &candidates, threads)?
        }
    } else {
        scan_all_chunks(adt, &maps, threads)?
    };

    let mut iter = cubes.into_iter();
    let mut total = iter
        .next()
        .unwrap_or_else(|| make_cube(&maps, adt.n_measures()));
    for cube in iter {
        total.merge(&cube)?;
    }
    total.into_result(&query.aggs)
}

/// Chooses a worker count and a prefetch plan from the machine's
/// parallelism and the size of the job, then dispatches: the engine's
/// default consolidation entry point. Answers come from the pool's
/// result-cube cache when possible — an exact cached cube, or a finer
/// one coarsened by pure in-memory re-aggregation (see
/// [`crate::rescache`]); both are bit-identical to computing directly.
/// On a true miss, small arrays run the plain sequential algorithms
/// (pipeline spin-up would cost more than it saves); everything else
/// goes through [`consolidate_pipelined`] — even with a single
/// consumer the pipeline's vectored bypass reads and per-chunk kernels
/// beat the inline read/decode/aggregate loop.
pub fn consolidate_auto(adt: &OlapArray, query: &Query) -> Result<ConsolidationResult> {
    query.validate(adt.dims(), adt.n_measures())?;
    crate::rescache::consolidate_cached(adt, query, || consolidate_cube_auto(adt, query))
}

/// The compute path behind [`consolidate_auto`]: pick sequential or
/// pipelined by job size and stop at the positional cube.
fn consolidate_cube_auto(adt: &OlapArray, query: &Query) -> Result<ResultCube> {
    let num_chunks = adt.array().shape().num_chunks();
    if num_chunks < 2 * AUTO_MIN_CHUNKS_PER_WORKER {
        let (_maps, cube) = if query.has_selection() {
            crate::select::consolidate_with_selection_cube_opt(adt, query, BuildResultBtrees::No)?
        } else {
            crate::consolidate::consolidate_full_cube(adt, query, BuildResultBtrees::No)?
        };
        return Ok(cube);
    }
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let workers = cpus.min(num_chunks / AUTO_MIN_CHUNKS_PER_WORKER).max(1);
    consolidate_pipelined_cube(adt, query, workers as usize, PrefetchPlan::auto(num_chunks))
}

/// §4.1 phase 2 with `threads` workers: contiguous chunk spans per
/// worker (chunk order = disk order, so each worker reads sequentially
/// within its span), private cubes.
fn scan_all_chunks(
    adt: &OlapArray,
    maps: &[crate::consolidate::GroupMap],
    threads: usize,
) -> Result<Vec<ResultCube>> {
    let num_chunks = adt.array().shape().num_chunks();
    let span = num_chunks.div_ceil(threads as u64).max(1);
    run_workers(threads, |w| {
        let lo = w as u64 * span;
        let hi = ((w as u64 + 1) * span).min(num_chunks);
        if lo >= hi {
            return None;
        }
        Some(move || -> Result<ResultCube> {
            let mut cube = make_cube(maps, adt.n_measures());
            let shape = adt.array().shape();
            let mut coords = vec![0u32; shape.n_dims()];
            let mut ranks = vec![0u32; maps.len()];
            for chunk_no in lo..hi {
                let chunk = adt.array().read_chunk(chunk_no)?;
                chunk.for_each_valid(|offset, values| {
                    shape.decode(chunk_no, offset, &mut coords);
                    for (g, map) in maps.iter().enumerate() {
                        ranks[g] = map.i2i[coords[map.dim] as usize];
                    }
                    cube.add(&ranks, values);
                });
            }
            Ok(cube)
        })
    })
}

/// §4.2 step 2 with `threads` workers: the qualifying-chunk list is
/// split into contiguous spans (preserving its ascending chunk-number
/// order within each worker), private cubes.
fn scan_selected_chunks(
    adt: &OlapArray,
    maps: &[crate::consolidate::GroupMap],
    probes: &[DimProbe],
    candidates: &[(u64, Vec<usize>)],
    threads: usize,
) -> Result<Vec<ResultCube>> {
    let span = candidates.len().div_ceil(threads).max(1);
    run_workers(threads, |w| {
        let lo = w * span;
        let hi = ((w + 1) * span).min(candidates.len());
        if lo >= hi {
            return None;
        }
        Some(move || -> Result<ResultCube> {
            let mut cube = make_cube(maps, adt.n_measures());
            let mut ranks = vec![0u32; maps.len()];
            for (chunk_no, chunk_sel) in &candidates[lo..hi] {
                let chunk = adt.array().read_chunk(*chunk_no)?;
                eval_chunk(adt, &chunk, probes, chunk_sel, maps, &mut ranks, &mut cube);
            }
            Ok(cube)
        })
    })
}

/// Spawns up to `threads` scoped workers (the factory may decline a
/// slot by returning `None`) and collects their cubes.
fn run_workers<'e, F, W>(threads: usize, mut make_worker: F) -> Result<Vec<ResultCube>>
where
    F: FnMut(usize) -> Option<W>,
    W: FnOnce() -> Result<ResultCube> + Send + 'e,
{
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..threads {
            let Some(work) = make_worker(w) else {
                break;
            };
            handles.push(scope.spawn(move |_| work()));
        }
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(Error::Internal("consolidation worker panicked".into()))
                })
            })
            .collect::<Result<Vec<_>>>()
    })
    .map_err(|_| Error::Internal("parallel consolidation scope panicked".into()))?
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::DimensionTable;
    use crate::query::{AttrRef, DimGrouping, Selection};
    use molap_array::ChunkFormat;
    use molap_storage::{BufferPool, MemDisk};
    use std::sync::Arc;

    fn build(cells: usize) -> OlapArray {
        build_fmt(cells, ChunkFormat::ChunkOffset)
    }

    fn build_fmt(cells: usize, format: ChunkFormat) -> OlapArray {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 4096));
        let dims = vec![
            DimensionTable::build(
                "a",
                &(0..30i64).collect::<Vec<_>>(),
                vec![("h", (0..30i64).map(|k| k / 10).collect())],
            )
            .unwrap(),
            DimensionTable::build(
                "b",
                &(0..20i64).collect::<Vec<_>>(),
                vec![("h", (0..20i64).map(|k| k % 4).collect())],
            )
            .unwrap(),
        ];
        let all: Vec<(Vec<i64>, Vec<i64>)> = (0..30i64)
            .flat_map(|x| (0..20i64).map(move |y| (vec![x, y], vec![x * 31 + y])))
            .filter(|(k, _)| (k[0] * 13 + k[1] * 7) % 3 != 0)
            .take(cells)
            .collect();
        OlapArray::build(pool, dims, &[7, 6], format, all, 1).unwrap()
    }

    #[test]
    fn parallel_equals_sequential_for_all_thread_counts() {
        let adt = build(300);
        for group_by in [
            vec![DimGrouping::Level(0), DimGrouping::Level(0)],
            vec![DimGrouping::Key, DimGrouping::Drop],
            vec![DimGrouping::Drop, DimGrouping::Drop],
        ] {
            let q = Query::new(group_by);
            let sequential = adt.consolidate(&q).unwrap();
            for threads in [1, 2, 3, 8, 64] {
                let parallel = consolidate_parallel(&adt, &q, threads).unwrap();
                assert_eq!(parallel, sequential, "{threads} threads, {q:?}");
            }
        }
    }

    #[test]
    fn more_workers_than_chunks_is_fine() {
        let adt = build(10);
        let q = Query::new(vec![DimGrouping::Drop, DimGrouping::Drop]);
        let res = consolidate_parallel(&adt, &q, 1000).unwrap();
        assert_eq!(res, adt.consolidate(&q).unwrap());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let adt = build(50);
        let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop]);
        assert_eq!(
            consolidate_parallel(&adt, &q, 0).unwrap(),
            adt.consolidate(&q).unwrap()
        );
    }

    #[test]
    fn parallel_selection_equals_sequential_for_all_thread_counts() {
        let adt = build(300);
        let selections: Vec<Vec<(usize, Selection)>> = vec![
            // One-dimension attribute selection.
            vec![(0, Selection::eq(AttrRef::Level(0), 1))],
            // Conjunction across both dimensions.
            vec![
                (0, Selection::in_list(AttrRef::Level(0), vec![0, 2])),
                (1, Selection::in_list(AttrRef::Level(0), vec![1, 3])),
            ],
            // Narrow key probes.
            vec![
                (0, Selection::in_list(AttrRef::Key, vec![3, 17, 29])),
                (1, Selection::eq(AttrRef::Key, 5)),
            ],
            // Empty result.
            vec![(0, Selection::eq(AttrRef::Level(0), 99))],
        ];
        for sels in selections {
            for group_by in [
                vec![DimGrouping::Level(0), DimGrouping::Level(0)],
                vec![DimGrouping::Key, DimGrouping::Drop],
                vec![DimGrouping::Drop, DimGrouping::Drop],
            ] {
                let mut q = Query::new(group_by);
                for (d, sel) in &sels {
                    q = q.with_selection(*d, sel.clone());
                }
                let sequential = adt.consolidate(&q).unwrap();
                for threads in [1, 2, 3, 8, 64] {
                    let parallel = consolidate_parallel(&adt, &q, threads).unwrap();
                    assert_eq!(parallel, sequential, "{threads} threads, {q:?}");
                }
            }
        }
    }

    #[test]
    fn pipelined_equals_sequential_for_mixed_queries() {
        let adt = build(300);
        let queries = vec![
            // Full scans.
            Query::new(vec![DimGrouping::Level(0), DimGrouping::Level(0)]),
            Query::new(vec![DimGrouping::Key, DimGrouping::Drop]),
            Query::new(vec![DimGrouping::Drop, DimGrouping::Drop]),
            // Broad selection (scan direction) over a grouped query.
            Query::new(vec![DimGrouping::Level(0), DimGrouping::Level(0)])
                .with_selection(0, Selection::in_list(AttrRef::Level(0), vec![0, 2])),
            // Narrow key probes (probe direction).
            Query::new(vec![DimGrouping::Key, DimGrouping::Drop])
                .with_selection(0, Selection::in_list(AttrRef::Key, vec![3, 17, 29]))
                .with_selection(1, Selection::eq(AttrRef::Key, 5)),
            // Empty selection.
            Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop])
                .with_selection(0, Selection::eq(AttrRef::Level(0), 99)),
        ];
        for q in &queries {
            let sequential = adt.consolidate(q).unwrap();
            for (workers, plan) in [
                (1, PrefetchPlan::new(1, 1)),
                (1, PrefetchPlan::new(2, 4)),
                (3, PrefetchPlan::new(2, 2)),
                (4, PrefetchPlan::new(3, 16)),
            ] {
                let piped = consolidate_pipelined(&adt, q, workers, plan).unwrap();
                assert_eq!(piped, sequential, "{workers} workers, {plan:?}, {q:?}");
            }
        }
    }

    #[test]
    fn diffseq_streaming_matches_sequential_oracle() {
        // The tentpole acceptance oracle: on a DiffSeq array, pipelined
        // streaming consolidation (no chunk materialization on the scan
        // path) must be bit-identical to the sequential `consolidate`,
        // across all five aggregates, both §4.2 directions, and the
        // materialize-then-scan pipeline as a third witness.
        use crate::aggregate::AggFunc;
        let adt = build_fmt(300, ChunkFormat::DiffSeq);
        let queries = vec![
            // Full scans (streaming full_scan_consumer).
            Query::new(vec![DimGrouping::Level(0), DimGrouping::Level(0)]),
            Query::new(vec![DimGrouping::Key, DimGrouping::Drop]),
            Query::new(vec![DimGrouping::Drop, DimGrouping::Drop]),
            // Broad selection: scan direction, masked streaming kernel.
            Query::new(vec![DimGrouping::Level(0), DimGrouping::Level(0)])
                .with_selection(0, Selection::in_list(AttrRef::Level(0), vec![0, 2])),
            // Narrow key probes: probe direction materializes.
            Query::new(vec![DimGrouping::Key, DimGrouping::Drop])
                .with_selection(0, Selection::in_list(AttrRef::Key, vec![3, 17, 29]))
                .with_selection(1, Selection::eq(AttrRef::Key, 5)),
            // Empty selection.
            Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop])
                .with_selection(0, Selection::eq(AttrRef::Level(0), 99)),
        ];
        for base in &queries {
            for agg in [
                AggFunc::Sum,
                AggFunc::Count,
                AggFunc::Min,
                AggFunc::Max,
                AggFunc::Avg,
            ] {
                let q = base.clone().with_aggs(vec![agg]);
                let sequential = adt.consolidate(&q).unwrap();
                for (workers, plan) in [
                    (1, PrefetchPlan::new(1, 1)),
                    (2, PrefetchPlan::new(2, 4)),
                    (4, PrefetchPlan::new(3, 16)),
                ] {
                    adt.pool().clear().unwrap(); // cold: force the byte path
                    let streamed = consolidate_pipelined(&adt, &q, workers, plan).unwrap();
                    assert_eq!(streamed, sequential, "streaming {workers}w {plan:?} {q:?}");
                    adt.pool().clear().unwrap();
                    let materialized =
                        consolidate_pipelined(&adt, &q, workers, plan.with_streaming(false))
                            .unwrap();
                    assert_eq!(materialized, sequential, "materialize {workers}w {q:?}");
                }
            }
        }
    }

    #[test]
    fn pipelined_cold_runs_match_and_count_prefetches() {
        let adt = build(300);
        let pool = adt.pool().clone();
        let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Level(0)]);
        let sequential = adt.consolidate(&q).unwrap();
        pool.clear().unwrap();
        let before = pool.stats().snapshot();
        let piped = consolidate_pipelined(&adt, &q, 2, PrefetchPlan::new(2, 4)).unwrap();
        assert_eq!(piped, sequential);
        let d = pool.stats().snapshot().since(&before);
        let num_chunks = adt.array().shape().num_chunks();
        assert_eq!(d.prefetch_issued, num_chunks);
        assert_eq!(d.prefetch_hits + d.prefetch_wasted, d.prefetch_issued);
        assert!(d.prefetch_queue_peak >= 1);
    }

    #[test]
    fn auto_matches_sequential() {
        let adt = build(300);
        let plain = Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop]);
        let selected = Query::new(vec![DimGrouping::Key, DimGrouping::Drop])
            .with_selection(1, Selection::in_list(AttrRef::Level(0), vec![0, 2]));
        for q in [plain, selected] {
            let first = consolidate_auto(&adt, &q).unwrap();
            assert_eq!(first, adt.consolidate(&q).unwrap(), "{q:?}");
            // The repeat answers from the result-cube cache,
            // bit-identically.
            let before = adt.pool().stats().snapshot();
            assert_eq!(consolidate_auto(&adt, &q).unwrap(), first, "{q:?}");
            let d = adt.pool().stats().snapshot().since(&before);
            assert_eq!(d.result_cache_hits, 1, "{q:?}");
        }
        // Invalid queries are rejected up front.
        assert!(consolidate_auto(&adt, &Query::new(vec![DimGrouping::Drop])).is_err());
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let adt = build(50);
        let q = Query::new(vec![DimGrouping::Drop]); // wrong arity
        assert!(consolidate_parallel(&adt, &q, 2).is_err());
    }
}
