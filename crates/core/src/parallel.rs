//! Parallel array consolidation — the paper's future work (§6):
//! "we believe that the large OLAP data set sizes require parallel
//! computing and we would like to investigate parallelization of OLAP
//! data structures and key OLAP operations".
//!
//! The array consolidation algorithm parallelizes naturally: chunks are
//! independent, the IndexToIndex mapping is read-only, and aggregation
//! into a *private* result cube per worker needs no synchronization —
//! cubes merge associatively at the end ([`crate::ResultCube::merge`]).
//! Workers share the buffer pool (frames are individually latched, the
//! page table is sharded) and the decoded-chunk cache, so this is
//! intra-operator parallelism on one store, not partitioned data.
//!
//! Selection queries (§4.2) parallelize the same way: the qualifying
//! chunks are enumerated once in chunk-number order, the list is split
//! into contiguous spans, and each worker runs the per-chunk
//! probe-or-scan evaluation over its span. The probe cursor's
//! monotonicity is per chunk, so chunk-granular partitioning preserves
//! it.

use crate::adt::OlapArray;
use crate::consolidate::{make_cube, phase1, BuildResultBtrees};
use crate::error::{Error, Result};
use crate::query::Query;
use crate::result::{ConsolidationResult, ResultCube};
use crate::select::{build_probes, candidate_chunks, eval_chunk, DimProbe};

/// Fewer qualifying chunks than this and [`consolidate_auto`] stays
/// sequential: thread spin-up would cost more than it saves.
const AUTO_MIN_CHUNKS_PER_WORKER: u64 = 4;

/// Like [`OlapArray::consolidate`], but evaluating chunks with
/// `threads` workers. Supports both the §4.1 (no selections) and §4.2
/// (with selections) algorithms; results are identical to the
/// sequential paths for any thread count.
pub fn consolidate_parallel(
    adt: &OlapArray,
    query: &Query,
    threads: usize,
) -> Result<ConsolidationResult> {
    query.validate(adt.dims(), adt.n_measures())?;
    let threads = threads.max(1);
    let (maps, _result_btrees) = phase1(adt, query, BuildResultBtrees::No)?;

    let cubes = if query.has_selection() {
        let (probes, any_empty) = build_probes(adt, query)?;
        if any_empty {
            Vec::new()
        } else {
            let candidates = candidate_chunks(adt.array().shape(), &probes);
            scan_selected_chunks(adt, &maps, &probes, &candidates, threads)?
        }
    } else {
        scan_all_chunks(adt, &maps, threads)?
    };

    let mut iter = cubes.into_iter();
    let mut total = iter
        .next()
        .unwrap_or_else(|| make_cube(&maps, adt.n_measures()));
    for cube in iter {
        total.merge(&cube)?;
    }
    total.into_result(&query.aggs)
}

/// Chooses a worker count from the machine's parallelism and the size
/// of the job, then dispatches: the engine's default consolidation
/// entry point. Small queries (or single-CPU machines) run the plain
/// sequential algorithms.
pub fn consolidate_auto(adt: &OlapArray, query: &Query) -> Result<ConsolidationResult> {
    query.validate(adt.dims(), adt.n_measures())?;
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1);
    let num_chunks = adt.array().shape().num_chunks();
    let threads = cpus.min(num_chunks / AUTO_MIN_CHUNKS_PER_WORKER);
    if threads <= 1 {
        return adt.consolidate(query);
    }
    consolidate_parallel(adt, query, threads as usize)
}

/// §4.1 phase 2 with `threads` workers: contiguous chunk spans per
/// worker (chunk order = disk order, so each worker reads sequentially
/// within its span), private cubes.
fn scan_all_chunks(
    adt: &OlapArray,
    maps: &[crate::consolidate::GroupMap],
    threads: usize,
) -> Result<Vec<ResultCube>> {
    let num_chunks = adt.array().shape().num_chunks();
    let span = num_chunks.div_ceil(threads as u64).max(1);
    run_workers(threads, |w| {
        let lo = w as u64 * span;
        let hi = ((w as u64 + 1) * span).min(num_chunks);
        if lo >= hi {
            return None;
        }
        Some(move || -> Result<ResultCube> {
            let mut cube = make_cube(maps, adt.n_measures());
            let shape = adt.array().shape();
            let mut coords = vec![0u32; shape.n_dims()];
            let mut ranks = vec![0u32; maps.len()];
            for chunk_no in lo..hi {
                let chunk = adt.array().read_chunk(chunk_no)?;
                chunk.for_each_valid(|offset, values| {
                    shape.decode(chunk_no, offset, &mut coords);
                    for (g, map) in maps.iter().enumerate() {
                        ranks[g] = map.i2i[coords[map.dim] as usize];
                    }
                    cube.add(&ranks, values);
                });
            }
            Ok(cube)
        })
    })
}

/// §4.2 step 2 with `threads` workers: the qualifying-chunk list is
/// split into contiguous spans (preserving its ascending chunk-number
/// order within each worker), private cubes.
fn scan_selected_chunks(
    adt: &OlapArray,
    maps: &[crate::consolidate::GroupMap],
    probes: &[DimProbe],
    candidates: &[(u64, Vec<usize>)],
    threads: usize,
) -> Result<Vec<ResultCube>> {
    let span = candidates.len().div_ceil(threads).max(1);
    run_workers(threads, |w| {
        let lo = w * span;
        let hi = ((w + 1) * span).min(candidates.len());
        if lo >= hi {
            return None;
        }
        Some(move || -> Result<ResultCube> {
            let mut cube = make_cube(maps, adt.n_measures());
            let mut ranks = vec![0u32; maps.len()];
            for (chunk_no, chunk_sel) in &candidates[lo..hi] {
                let chunk = adt.array().read_chunk(*chunk_no)?;
                eval_chunk(adt, &chunk, probes, chunk_sel, maps, &mut ranks, &mut cube);
            }
            Ok(cube)
        })
    })
}

/// Spawns up to `threads` scoped workers (the factory may decline a
/// slot by returning `None`) and collects their cubes.
fn run_workers<'e, F, W>(threads: usize, mut make_worker: F) -> Result<Vec<ResultCube>>
where
    F: FnMut(usize) -> Option<W>,
    W: FnOnce() -> Result<ResultCube> + Send + 'e,
{
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..threads {
            let Some(work) = make_worker(w) else {
                break;
            };
            handles.push(scope.spawn(move |_| work()));
        }
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(Error::Internal("consolidation worker panicked".into()))
                })
            })
            .collect::<Result<Vec<_>>>()
    })
    .map_err(|_| Error::Internal("parallel consolidation scope panicked".into()))?
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::DimensionTable;
    use crate::query::{AttrRef, DimGrouping, Selection};
    use molap_array::ChunkFormat;
    use molap_storage::{BufferPool, MemDisk};
    use std::sync::Arc;

    fn build(cells: usize) -> OlapArray {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 4096));
        let dims = vec![
            DimensionTable::build(
                "a",
                &(0..30i64).collect::<Vec<_>>(),
                vec![("h", (0..30i64).map(|k| k / 10).collect())],
            )
            .unwrap(),
            DimensionTable::build(
                "b",
                &(0..20i64).collect::<Vec<_>>(),
                vec![("h", (0..20i64).map(|k| k % 4).collect())],
            )
            .unwrap(),
        ];
        let all: Vec<(Vec<i64>, Vec<i64>)> = (0..30i64)
            .flat_map(|x| (0..20i64).map(move |y| (vec![x, y], vec![x * 31 + y])))
            .filter(|(k, _)| (k[0] * 13 + k[1] * 7) % 3 != 0)
            .take(cells)
            .collect();
        OlapArray::build(pool, dims, &[7, 6], ChunkFormat::ChunkOffset, all, 1).unwrap()
    }

    #[test]
    fn parallel_equals_sequential_for_all_thread_counts() {
        let adt = build(300);
        for group_by in [
            vec![DimGrouping::Level(0), DimGrouping::Level(0)],
            vec![DimGrouping::Key, DimGrouping::Drop],
            vec![DimGrouping::Drop, DimGrouping::Drop],
        ] {
            let q = Query::new(group_by);
            let sequential = adt.consolidate(&q).unwrap();
            for threads in [1, 2, 3, 8, 64] {
                let parallel = consolidate_parallel(&adt, &q, threads).unwrap();
                assert_eq!(parallel, sequential, "{threads} threads, {q:?}");
            }
        }
    }

    #[test]
    fn more_workers_than_chunks_is_fine() {
        let adt = build(10);
        let q = Query::new(vec![DimGrouping::Drop, DimGrouping::Drop]);
        let res = consolidate_parallel(&adt, &q, 1000).unwrap();
        assert_eq!(res, adt.consolidate(&q).unwrap());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let adt = build(50);
        let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop]);
        assert_eq!(
            consolidate_parallel(&adt, &q, 0).unwrap(),
            adt.consolidate(&q).unwrap()
        );
    }

    #[test]
    fn parallel_selection_equals_sequential_for_all_thread_counts() {
        let adt = build(300);
        let selections: Vec<Vec<(usize, Selection)>> = vec![
            // One-dimension attribute selection.
            vec![(0, Selection::eq(AttrRef::Level(0), 1))],
            // Conjunction across both dimensions.
            vec![
                (0, Selection::in_list(AttrRef::Level(0), vec![0, 2])),
                (1, Selection::in_list(AttrRef::Level(0), vec![1, 3])),
            ],
            // Narrow key probes.
            vec![
                (0, Selection::in_list(AttrRef::Key, vec![3, 17, 29])),
                (1, Selection::eq(AttrRef::Key, 5)),
            ],
            // Empty result.
            vec![(0, Selection::eq(AttrRef::Level(0), 99))],
        ];
        for sels in selections {
            for group_by in [
                vec![DimGrouping::Level(0), DimGrouping::Level(0)],
                vec![DimGrouping::Key, DimGrouping::Drop],
                vec![DimGrouping::Drop, DimGrouping::Drop],
            ] {
                let mut q = Query::new(group_by);
                for (d, sel) in &sels {
                    q = q.with_selection(*d, sel.clone());
                }
                let sequential = adt.consolidate(&q).unwrap();
                for threads in [1, 2, 3, 8, 64] {
                    let parallel = consolidate_parallel(&adt, &q, threads).unwrap();
                    assert_eq!(parallel, sequential, "{threads} threads, {q:?}");
                }
            }
        }
    }

    #[test]
    fn auto_matches_sequential() {
        let adt = build(300);
        let plain = Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop]);
        let selected = Query::new(vec![DimGrouping::Key, DimGrouping::Drop])
            .with_selection(1, Selection::in_list(AttrRef::Level(0), vec![0, 2]));
        for q in [plain, selected] {
            assert_eq!(
                consolidate_auto(&adt, &q).unwrap(),
                adt.consolidate(&q).unwrap(),
                "{q:?}"
            );
        }
        // Invalid queries are rejected up front.
        assert!(consolidate_auto(&adt, &Query::new(vec![DimGrouping::Drop])).is_err());
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let adt = build(50);
        let q = Query::new(vec![DimGrouping::Drop]); // wrong arity
        assert!(consolidate_parallel(&adt, &q, 2).is_err());
    }
}
