//! Parallel array consolidation — the paper's future work (§6):
//! "we believe that the large OLAP data set sizes require parallel
//! computing and we would like to investigate parallelization of OLAP
//! data structures and key OLAP operations".
//!
//! The array consolidation algorithm parallelizes naturally: chunks are
//! independent, the IndexToIndex mapping is read-only, and aggregation
//! into a *private* result cube per worker needs no synchronization —
//! cubes merge associatively at the end ([`crate::ResultCube::merge`]).
//! Workers share the buffer pool (frames are individually latched), so
//! this is intra-operator parallelism on one store, not partitioned
//! data.
//!
//! Selection queries keep the sequential §4.2 path: their cost is
//! dominated by the chunk-ordered probe whose monotonic cursor is
//! inherently sequential per chunk, and the paper's selective queries
//! touch little data anyway.

use crate::adt::OlapArray;
use crate::consolidate::{make_cube, phase1};
use crate::error::{Error, Result};
use crate::query::Query;
use crate::result::ConsolidationResult;

/// Like [`OlapArray::consolidate`] for selection-free queries, but
/// scanning chunks with `threads` workers. Results are identical to the
/// sequential algorithm.
pub fn consolidate_parallel(
    adt: &OlapArray,
    query: &Query,
    threads: usize,
) -> Result<ConsolidationResult> {
    query.validate(adt.dims(), adt.n_measures())?;
    if query.has_selection() {
        return Err(Error::Query(
            "parallel consolidation does not support selections; use consolidate()".into(),
        ));
    }
    let threads = threads.max(1);
    let (maps, _result_btrees) = phase1(adt, query)?;
    let num_chunks = adt.array().shape().num_chunks();

    // Contiguous chunk spans per worker (chunk order = disk order, so
    // each worker reads sequentially within its span).
    let span = num_chunks.div_ceil(threads as u64).max(1);
    let cubes = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..threads as u64 {
            let lo = w * span;
            let hi = ((w + 1) * span).min(num_chunks);
            if lo >= hi {
                break;
            }
            let maps = &maps;
            handles.push(scope.spawn(move |_| -> Result<crate::result::ResultCube> {
                let mut cube = make_cube(maps, adt.n_measures());
                let shape = adt.array().shape();
                let mut coords = vec![0u32; shape.n_dims()];
                let mut ranks = vec![0u32; maps.len()];
                for chunk_no in lo..hi {
                    let chunk = adt.array().read_chunk(chunk_no)?;
                    chunk.for_each_valid(|offset, values| {
                        shape.decode(chunk_no, offset, &mut coords);
                        for (g, map) in maps.iter().enumerate() {
                            ranks[g] = map.i2i[coords[map.dim] as usize];
                        }
                        cube.add(&ranks, values);
                    });
                }
                Ok(cube)
            }));
        }
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(Error::Internal("consolidation worker panicked".into()))
                })
            })
            .collect::<Result<Vec<_>>>()
    })
    .map_err(|_| Error::Internal("parallel consolidation scope panicked".into()))??;

    let mut iter = cubes.into_iter();
    let mut total = iter
        .next()
        .unwrap_or_else(|| make_cube(&maps, adt.n_measures()));
    for cube in iter {
        total.merge(&cube)?;
    }
    total.into_result(&query.aggs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::DimensionTable;
    use crate::query::{AttrRef, DimGrouping, Selection};
    use molap_array::ChunkFormat;
    use molap_storage::{BufferPool, MemDisk};
    use std::sync::Arc;

    fn build(cells: usize) -> OlapArray {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 4096));
        let dims = vec![
            DimensionTable::build(
                "a",
                &(0..30i64).collect::<Vec<_>>(),
                vec![("h", (0..30i64).map(|k| k / 10).collect())],
            )
            .unwrap(),
            DimensionTable::build(
                "b",
                &(0..20i64).collect::<Vec<_>>(),
                vec![("h", (0..20i64).map(|k| k % 4).collect())],
            )
            .unwrap(),
        ];
        let all: Vec<(Vec<i64>, Vec<i64>)> = (0..30i64)
            .flat_map(|x| (0..20i64).map(move |y| (vec![x, y], vec![x * 31 + y])))
            .filter(|(k, _)| (k[0] * 13 + k[1] * 7) % 3 != 0)
            .take(cells)
            .collect();
        OlapArray::build(pool, dims, &[7, 6], ChunkFormat::ChunkOffset, all, 1).unwrap()
    }

    #[test]
    fn parallel_equals_sequential_for_all_thread_counts() {
        let adt = build(300);
        for group_by in [
            vec![DimGrouping::Level(0), DimGrouping::Level(0)],
            vec![DimGrouping::Key, DimGrouping::Drop],
            vec![DimGrouping::Drop, DimGrouping::Drop],
        ] {
            let q = Query::new(group_by);
            let sequential = adt.consolidate(&q).unwrap();
            for threads in [1, 2, 3, 8, 64] {
                let parallel = consolidate_parallel(&adt, &q, threads).unwrap();
                assert_eq!(parallel, sequential, "{threads} threads, {q:?}");
            }
        }
    }

    #[test]
    fn more_workers_than_chunks_is_fine() {
        let adt = build(10);
        let q = Query::new(vec![DimGrouping::Drop, DimGrouping::Drop]);
        let res = consolidate_parallel(&adt, &q, 1000).unwrap();
        assert_eq!(res, adt.consolidate(&q).unwrap());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let adt = build(50);
        let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop]);
        assert_eq!(
            consolidate_parallel(&adt, &q, 0).unwrap(),
            adt.consolidate(&q).unwrap()
        );
    }

    #[test]
    fn selections_are_rejected() {
        let adt = build(50);
        let q = Query::new(vec![DimGrouping::Drop, DimGrouping::Drop])
            .with_selection(0, Selection::eq(AttrRef::Level(0), 1));
        assert!(matches!(
            consolidate_parallel(&adt, &q, 2),
            Err(Error::Query(_))
        ));
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let adt = build(50);
        let q = Query::new(vec![DimGrouping::Drop]); // wrong arity
        assert!(consolidate_parallel(&adt, &q, 2).is_err());
    }
}
