//! The relational StarJoin consolidation operator (§4.3).
//!
//! Left-deep hash plans cannot place a huge fact table well, and a
//! dimension cross-product explodes; the paper's answer is a single
//! operator that approximates a right-deep pipeline: build one
//! in-memory hash table per dimension (key → group-by value, with
//! selection predicates applied while building, so a probe miss is a
//! filtered tuple), then scan the fact table once, probing all
//! dimension tables per tuple and folding the measure into an
//! aggregation hash table keyed by the joined group-by values.

use std::sync::Arc;

use molap_factfile::{FactFile, TupleSchema};
use molap_storage::BufferPool;

use crate::aggregate::AggState;
use crate::dimension::DimensionTable;
use crate::error::{Error, Result};
use crate::query::{AttrRef, DimGrouping, Query, Selection};
use crate::result::{ConsolidationResult, Row};
use crate::util::FxHashMap;

/// Pages per fact-file extent (§4.4's contiguous allocation unit).
pub const DEFAULT_EXTENT_PAGES: u64 = 64;

/// The relational physical design: fact file + dimension tables.
pub struct StarSchema {
    /// The fact file (§4.4's dense fixed-record structure).
    pub fact: FactFile,
    /// The dimension tables, in fact-column order.
    pub dims: Vec<DimensionTable>,
}

impl StarSchema {
    /// Loads `(dimension keys, measures)` cells into a fact file. One
    /// tuple is generated per valid cell, exactly as the paper derives
    /// the table representation from the array representation (§5.4).
    pub fn build<I>(
        pool: Arc<BufferPool>,
        dims: Vec<DimensionTable>,
        cells: I,
        n_measures: usize,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = (Vec<i64>, Vec<i64>)>,
    {
        Self::build_with_extents(pool, dims, cells, n_measures, DEFAULT_EXTENT_PAGES)
    }

    /// [`StarSchema::build`] with an explicit extent size.
    pub fn build_with_extents<I>(
        pool: Arc<BufferPool>,
        dims: Vec<DimensionTable>,
        cells: I,
        n_measures: usize,
        extent_pages: u64,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = (Vec<i64>, Vec<i64>)>,
    {
        let schema = TupleSchema::new(dims.len(), n_measures);
        let mut fact = FactFile::create(pool, schema, extent_pages)?;
        let mut key_buf = vec![0u32; dims.len()];
        for (keys, measures) in cells {
            if keys.len() != dims.len() {
                return Err(Error::Data(format!(
                    "cell has {} keys for {} dimensions",
                    keys.len(),
                    dims.len()
                )));
            }
            for (d, &k) in keys.iter().enumerate() {
                if dims[d].row_of_key(k).is_none() {
                    return Err(Error::Data(format!(
                        "unknown key {k} in dimension {}",
                        dims[d].name()
                    )));
                }
                key_buf[d] = u32::try_from(k)
                    .map_err(|_| Error::Data(format!("fact file keys must fit u32, got {k}")))?;
            }
            fact.append(&key_buf, &measures)?;
        }
        Ok(StarSchema { fact, dims })
    }

    /// Number of fact tuples.
    pub fn num_tuples(&self) -> u64 {
        self.fact.num_tuples()
    }

    /// Serializes dimension tables + fact-file metadata for the
    /// database catalog.
    pub fn meta_to_bytes(&self) -> Vec<u8> {
        use crate::dimension::write_blob;
        let mut out = Vec::new();
        out.extend_from_slice(&(self.dims.len() as u16).to_le_bytes());
        for dim in &self.dims {
            write_blob(&mut out, &dim.to_bytes());
        }
        write_blob(&mut out, &self.fact.meta_to_bytes());
        out
    }

    /// Inverse of [`StarSchema::meta_to_bytes`], over the same pool.
    pub fn from_meta_bytes(pool: Arc<BufferPool>, bytes: &[u8]) -> Result<Self> {
        use crate::dimension::Reader;
        let mut r = Reader::new(bytes);
        let n_dims = r.u16()? as usize;
        let dims: Vec<DimensionTable> = (0..n_dims)
            .map(|_| DimensionTable::from_bytes(r.blob()?))
            .collect::<Result<_>>()?;
        let fact = FactFile::from_meta_bytes(pool, r.blob()?)?;
        if fact.schema().n_dims != dims.len() {
            return Err(Error::Data(
                "star schema meta: fact arity does not match dimensions".into(),
            ));
        }
        Ok(StarSchema { fact, dims })
    }
}

/// One dimension's build-side hash table.
pub(crate) struct DimHashTable {
    /// Fact foreign key → group code (0 when the dimension is only
    /// filtered, not grouped). Rows failing the dimension's selections
    /// are absent, so a probe miss filters the fact tuple.
    pub table: FxHashMap<u32, i64>,
    /// True if the dimension contributes a group-by column.
    pub grouped: bool,
    /// Result column header when grouped.
    pub column: String,
}

fn row_passes(dim: &DimensionTable, row: u32, sels: &[Selection]) -> Result<bool> {
    for sel in sels {
        let value = match sel.attr {
            AttrRef::Key => dim.keys()[row as usize],
            AttrRef::Level(l) => dim.attr_at(l, row)?,
        };
        if !sel.pred.accepts(value) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Builds the per-dimension hash tables for the dimensions a query
/// actually joins (grouped or selected). Shared with the bitmap plan,
/// which reuses the group-code side.
pub(crate) fn build_dim_tables(
    schema: &StarSchema,
    query: &Query,
    apply_selections: bool,
) -> Result<Vec<Option<DimHashTable>>> {
    let mut tables = Vec::with_capacity(schema.dims.len());
    for (d, dim) in schema.dims.iter().enumerate() {
        let grouping = query.group_by[d];
        let sels = &query.selections[d];
        let joined = !matches!(grouping, DimGrouping::Drop) || !sels.is_empty();
        if !joined {
            tables.push(None);
            continue;
        }
        let column = match grouping {
            DimGrouping::Drop => String::new(),
            DimGrouping::Key => format!("{}.key", dim.name()),
            DimGrouping::Level(l) => {
                format!("{}.{}", dim.name(), dim.level_name(l).unwrap_or("?"))
            }
        };
        let mut table = FxHashMap::default();
        table.reserve(dim.len());
        for row in 0..dim.len() as u32 {
            if apply_selections && !row_passes(dim, row, sels)? {
                continue;
            }
            let key = dim.keys()[row as usize];
            let code = match grouping {
                DimGrouping::Drop => 0,
                DimGrouping::Key => key,
                DimGrouping::Level(l) => dim.attr_at(l, row)?,
            };
            let key = u32::try_from(key)
                .map_err(|_| Error::Data(format!("fact file keys must fit u32, got {key}")))?;
            table.insert(key, code);
        }
        tables.push(Some(DimHashTable {
            table,
            grouped: !matches!(grouping, DimGrouping::Drop),
            column,
        }));
    }
    Ok(tables)
}

/// Finalizes an aggregation hash table into a normalized result.
pub(crate) fn finalize_groups(
    columns: Vec<String>,
    groups: std::collections::HashMap<
        Box<[i64]>,
        Vec<AggState>,
        std::hash::BuildHasherDefault<crate::util::FxHasher>,
    >,
    query: &Query,
) -> Result<ConsolidationResult> {
    let mut rows = Vec::with_capacity(groups.len());
    for (keys, states) in groups {
        let values = states
            .iter()
            .zip(&query.aggs)
            .map(|(s, &f)| {
                s.finalize(f).ok_or_else(|| {
                    Error::Internal("aggregate group created without a value".into())
                })
            })
            .collect::<Result<Vec<_>>>()?;
        rows.push(Row {
            keys: keys.into_vec(),
            values,
        });
    }
    Ok(ConsolidationResult::from_rows(columns, rows))
}

/// The StarJoin consolidation algorithm (§4.3), with the §4.3/§5.2
/// selection handling: selections are applied while building the
/// dimension hash tables.
pub fn starjoin_consolidate(schema: &StarSchema, query: &Query) -> Result<ConsolidationResult> {
    query.validate(&schema.dims, schema.fact.schema().n_measures)?;
    let tables = build_dim_tables(schema, query, true)?;
    let joined: Vec<(usize, &DimHashTable)> = tables
        .iter()
        .enumerate()
        .filter_map(|(d, t)| t.as_ref().map(|t| (d, t)))
        .collect();
    let columns: Vec<String> = joined
        .iter()
        .filter(|(_, t)| t.grouped)
        .map(|(_, t)| t.column.clone())
        .collect();
    let n_grouped = columns.len();

    let mut groups: std::collections::HashMap<
        Box<[i64]>,
        Vec<AggState>,
        std::hash::BuildHasherDefault<crate::util::FxHasher>,
    > = Default::default();
    let n_measures = schema.fact.schema().n_measures;
    let mut group_key = vec![0i64; n_grouped];

    schema.fact.scan(|_t, dims, measures| {
        // Probe every joined dimension; a miss filters the tuple.
        let mut g = 0;
        for &(d, table) in &joined {
            match table.table.get(&dims[d]) {
                Some(&code) => {
                    if table.grouped {
                        group_key[g] = code;
                        g += 1;
                    }
                }
                None => return,
            }
        }
        let states = match groups.get_mut(group_key.as_slice()) {
            Some(s) => s,
            None => groups
                .entry(group_key.clone().into_boxed_slice())
                .or_insert_with(|| vec![AggState::new(); n_measures]),
        };
        for (s, &v) in states.iter_mut().zip(measures) {
            s.add(v);
        }
    })?;

    finalize_groups(columns, groups, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::AggValue;
    use crate::query::Selection;
    use molap_storage::MemDisk;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 2048))
    }

    fn dims() -> Vec<DimensionTable> {
        vec![
            DimensionTable::build(
                "store",
                &[0, 1, 2, 3],
                vec![("city", vec![10, 10, 11, 12]), ("region", vec![5, 5, 5, 6])],
            )
            .unwrap(),
            DimensionTable::build("product", &[0, 1, 2], vec![("type", vec![7, 8, 7])]).unwrap(),
        ]
    }

    fn cells() -> Vec<(Vec<i64>, Vec<i64>)> {
        vec![
            (vec![0, 0], vec![1]),
            (vec![0, 1], vec![2]),
            (vec![1, 0], vec![4]),
            (vec![2, 2], vec![8]),
            (vec![3, 1], vec![16]),
            (vec![3, 2], vec![32]),
        ]
    }

    fn schema() -> StarSchema {
        StarSchema::build(pool(), dims(), cells(), 1).unwrap()
    }

    #[test]
    fn group_by_one_level() {
        let s = schema();
        let q = Query::new(vec![DimGrouping::Level(1), DimGrouping::Drop]);
        let res = starjoin_consolidate(&s, &q).unwrap();
        assert_eq!(res.columns(), &["store.region".to_string()]);
        assert_eq!(
            res.rows()
                .iter()
                .map(|r| (r.keys[0], r.values[0]))
                .collect::<Vec<_>>(),
            vec![(5, AggValue::Int(15)), (6, AggValue::Int(48))]
        );
    }

    #[test]
    fn selection_filters_via_hash_miss() {
        let s = schema();
        // WHERE store.city = 10 GROUP BY product.type.
        let q = Query::new(vec![DimGrouping::Drop, DimGrouping::Level(0)])
            .with_selection(0, Selection::eq(AttrRef::Level(0), 10));
        let res = starjoin_consolidate(&s, &q).unwrap();
        // Tuples with store 0/1: values 1,2,4 -> type 7: 1+4, type 8: 2.
        assert_eq!(
            res.rows()
                .iter()
                .map(|r| (r.keys[0], r.values[0]))
                .collect::<Vec<_>>(),
            vec![(7, AggValue::Int(5)), (8, AggValue::Int(2))]
        );
    }

    #[test]
    fn global_aggregate() {
        let s = schema();
        let q = Query::new(vec![DimGrouping::Drop, DimGrouping::Drop]);
        let res = starjoin_consolidate(&s, &q).unwrap();
        assert_eq!(res.rows().len(), 1);
        assert_eq!(res.rows()[0].values[0], AggValue::Int(63));
    }

    #[test]
    fn empty_selection_empty_result() {
        let s = schema();
        let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop])
            .with_selection(0, Selection::eq(AttrRef::Level(0), 999));
        assert!(starjoin_consolidate(&s, &q).unwrap().rows().is_empty());
    }

    #[test]
    fn build_rejects_bad_cells() {
        assert!(StarSchema::build(pool(), dims(), vec![(vec![0], vec![1])], 1).is_err());
        assert!(StarSchema::build(pool(), dims(), vec![(vec![9, 0], vec![1])], 1).is_err());
        assert!(
            StarSchema::build(pool(), dims(), cells(), 1)
                .unwrap()
                .num_tuples()
                == 6
        );
    }

    #[test]
    fn negative_keys_rejected_by_fact_file() {
        let d = vec![DimensionTable::build("d", &[-1, 0], vec![]).unwrap()];
        assert!(StarSchema::build(pool(), d, vec![(vec![-1], vec![1])], 1).is_err());
    }
}
