//! The consolidation query model.
//!
//! A generalized consolidation (§2.1) is a star join of the cube with
//! its dimension tables, a conjunction of per-dimension selections
//! `φ(Dᵢ)`, a GROUP BY over dimension attributes, and per-measure
//! aggregates. [`Query`] captures exactly that, engine-neutrally:
//!
//! * one [`DimGrouping`] per dimension — group by the key itself, by a
//!   hierarchy attribute, or aggregate the dimension away;
//! * per dimension, zero or more conjunctive [`Selection`]s, each an
//!   IN-list over the key or an attribute (the paper's `Dᵢ(Aᵢⱼ) = vᵢⱼ`
//!   is a one-element list);
//! * one [`AggFunc`] per measure.

use crate::aggregate::AggFunc;
use crate::dimension::DimensionTable;
use crate::error::{Error, Result};

/// Which column of a dimension a selection references.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AttrRef {
    /// The dimension's key attribute.
    Key,
    /// Hierarchy attribute at this level (0-based column index).
    Level(usize),
}

/// How one dimension participates in the GROUP BY.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DimGrouping {
    /// The dimension is aggregated away (not in the GROUP BY).
    Drop,
    /// Group by the dimension key (finest granularity).
    Key,
    /// Group by hierarchy attribute `level`.
    Level(usize),
}

/// The value set a selection accepts.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Pred {
    /// Membership in an explicit list (the paper's `attr = v` is a
    /// one-element list). An empty list selects nothing.
    ///
    /// Invariant: the list is sorted and deduplicated. The
    /// [`Selection`] constructors establish it; code building `Pred`
    /// values directly must supply a canonical list. [`Pred::accepts`]
    /// binary-searches, and the result-cache fingerprint relies on the
    /// canonical form being unique per value set.
    In(Vec<i64>),
    /// Inclusive range `lo <= value <= hi` (an empty range selects
    /// nothing).
    Range {
        /// Lower bound, inclusive.
        lo: i64,
        /// Upper bound, inclusive.
        hi: i64,
    },
}

impl Pred {
    /// True if `value` satisfies the predicate.
    #[inline]
    pub fn accepts(&self, value: i64) -> bool {
        match self {
            // The list is sorted+deduped by construction, so probes
            // are O(log n) instead of the old O(n) `contains`.
            Pred::In(values) => values.binary_search(&value).is_ok(),
            Pred::Range { lo, hi } => *lo <= value && value <= *hi,
        }
    }

    /// Rebuilds the sorted/deduped invariant on an `In` list. The
    /// constructors call this; it is also applied defensively when
    /// fingerprinting queries built by hand.
    pub(crate) fn canonicalize(&mut self) {
        if let Pred::In(values) = self {
            values.sort_unstable();
            values.dedup();
        }
    }
}

/// A conjunctive predicate on one dimension column.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Selection {
    /// The referenced column.
    pub attr: AttrRef,
    /// The accepted values.
    pub pred: Pred,
}

impl Selection {
    /// `attr = value` (the paper's equality predicate).
    pub fn eq(attr: AttrRef, value: i64) -> Self {
        Selection {
            attr,
            pred: Pred::In(vec![value]),
        }
    }

    /// `attr IN (values)`. The list is canonicalized (sorted, deduped)
    /// — membership is order-insensitive, so this changes no semantics.
    pub fn in_list(attr: AttrRef, values: Vec<i64>) -> Self {
        let mut pred = Pred::In(values);
        pred.canonicalize();
        Selection { attr, pred }
    }

    /// `attr BETWEEN lo AND hi` (inclusive).
    pub fn range(attr: AttrRef, lo: i64, hi: i64) -> Self {
        Selection {
            attr,
            pred: Pred::Range { lo, hi },
        }
    }
}

/// A consolidation query over an n-dimensional cube.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Query {
    /// One grouping per dimension.
    pub group_by: Vec<DimGrouping>,
    /// Conjunctive selections per dimension (outer index = dimension).
    pub selections: Vec<Vec<Selection>>,
    /// Aggregate per measure; defaults to SUM for every measure.
    pub aggs: Vec<AggFunc>,
}

impl Query {
    /// A pure consolidation (no selections, SUM for one measure).
    pub fn new(group_by: Vec<DimGrouping>) -> Self {
        let n = group_by.len();
        Query {
            group_by,
            selections: vec![Vec::new(); n],
            aggs: vec![AggFunc::Sum],
        }
    }

    /// Adds a selection on dimension `dim` (builder style).
    pub fn with_selection(mut self, dim: usize, sel: Selection) -> Self {
        assert!(dim < self.selections.len(), "dimension out of range");
        self.selections[dim].push(sel);
        self
    }

    /// Replaces the per-measure aggregate list (builder style).
    pub fn with_aggs(mut self, aggs: Vec<AggFunc>) -> Self {
        self.aggs = aggs;
        self
    }

    /// Number of dimensions the query addresses.
    pub fn n_dims(&self) -> usize {
        self.group_by.len()
    }

    /// True if any dimension carries a selection.
    pub fn has_selection(&self) -> bool {
        self.selections.iter().any(|s| !s.is_empty())
    }

    /// Dimensions that appear in the GROUP BY, in dimension order.
    pub fn grouped_dims(&self) -> Vec<usize> {
        self.group_by
            .iter()
            .enumerate()
            .filter(|(_, g)| !matches!(g, DimGrouping::Drop))
            .map(|(d, _)| d)
            .collect()
    }

    /// Validates the query against a set of dimension tables and the
    /// measure count of the cube.
    pub fn validate(&self, dims: &[DimensionTable], n_measures: usize) -> Result<()> {
        if self.group_by.len() != dims.len() {
            return Err(Error::Query(format!(
                "query addresses {} dimensions, cube has {}",
                self.group_by.len(),
                dims.len()
            )));
        }
        if self.selections.len() != dims.len() {
            return Err(Error::Query("selections arity mismatch".into()));
        }
        if self.aggs.len() != n_measures {
            return Err(Error::Query(format!(
                "{} aggregates for {} measures",
                self.aggs.len(),
                n_measures
            )));
        }
        for (d, g) in self.group_by.iter().enumerate() {
            if let DimGrouping::Level(l) = g {
                if *l >= dims[d].num_levels() {
                    return Err(Error::Query(format!(
                        "dimension {} has no level {l}",
                        dims[d].name()
                    )));
                }
            }
        }
        for (d, sels) in self.selections.iter().enumerate() {
            for sel in sels {
                if let AttrRef::Level(l) = sel.attr {
                    if l >= dims[d].num_levels() {
                        return Err(Error::Query(format!(
                            "selection on dimension {} level {l} out of range",
                            dims[d].name()
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dims() -> Vec<DimensionTable> {
        vec![
            DimensionTable::build("a", &[0, 1], vec![("h1", vec![0, 0])]).unwrap(),
            DimensionTable::build("b", &[0, 1, 2], vec![("h1", vec![0, 1, 1])]).unwrap(),
        ]
    }

    #[test]
    fn builder_and_accessors() {
        let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop])
            .with_selection(1, Selection::eq(AttrRef::Level(0), 1));
        assert_eq!(q.n_dims(), 2);
        assert!(q.has_selection());
        assert_eq!(q.grouped_dims(), vec![0]);
        assert_eq!(q.aggs, vec![AggFunc::Sum]);
        let q2 = Query::new(vec![DimGrouping::Key, DimGrouping::Key]);
        assert!(!q2.has_selection());
        assert_eq!(q2.grouped_dims(), vec![0, 1]);
    }

    #[test]
    fn validation_catches_mismatches() {
        let d = dims();
        assert!(Query::new(vec![DimGrouping::Drop]).validate(&d, 1).is_err());
        assert!(Query::new(vec![DimGrouping::Level(5), DimGrouping::Drop])
            .validate(&d, 1)
            .is_err());
        assert!(Query::new(vec![DimGrouping::Drop, DimGrouping::Drop])
            .with_selection(0, Selection::eq(AttrRef::Level(9), 0))
            .validate(&d, 1)
            .is_err());
        assert!(Query::new(vec![DimGrouping::Drop, DimGrouping::Drop])
            .validate(&d, 2)
            .is_err());
        assert!(Query::new(vec![DimGrouping::Level(0), DimGrouping::Key])
            .with_selection(1, Selection::eq(AttrRef::Key, 2))
            .validate(&d, 1)
            .is_ok());
    }

    #[test]
    fn selection_constructors() {
        let s = Selection::eq(AttrRef::Key, 7);
        assert_eq!(s.pred, Pred::In(vec![7]));
        let s = Selection::in_list(AttrRef::Level(1), vec![1, 2, 3]);
        assert!(s.pred.accepts(2) && !s.pred.accepts(4));
        let s = Selection::range(AttrRef::Key, 3, 5);
        assert!(s.pred.accepts(3) && s.pred.accepts(5));
        assert!(!s.pred.accepts(2) && !s.pred.accepts(6));
        // Degenerate predicates accept nothing.
        assert!(!Pred::In(vec![]).accepts(0));
        assert!(!Pred::Range { lo: 5, hi: 4 }.accepts(5));
    }

    #[test]
    fn in_lists_are_canonicalized() {
        let s = Selection::in_list(AttrRef::Key, vec![9, 2, 2, -4, 9]);
        assert_eq!(s.pred, Pred::In(vec![-4, 2, 9]));
        assert!(s.pred.accepts(-4) && s.pred.accepts(2) && s.pred.accepts(9));
        assert!(!s.pred.accepts(3));
        // Two spellings of the same value set compare equal — the
        // property the result-cache fingerprint depends on.
        assert_eq!(
            Selection::in_list(AttrRef::Key, vec![3, 1, 2]),
            Selection::in_list(AttrRef::Key, vec![1, 2, 3, 3])
        );
    }

    #[test]
    #[should_panic(expected = "dimension out of range")]
    fn with_selection_bounds_checked() {
        let _ =
            Query::new(vec![DimGrouping::Drop]).with_selection(3, Selection::eq(AttrRef::Key, 0));
    }
}
