//! The batched, durable write path.
//!
//! The paper evaluates a read-only array store; this module is the
//! ROADMAP's step toward a live serving system. A [`WriteBatch`]
//! collects `set_by_keys`-style cell mutations and [`apply_batch`]
//! commits them as one unit. Commits on one pool serialize on the
//! version table's commit mutex (`VersionTable::commit_section`), so
//! two batches can never interleave their apply/WAL/flush windows:
//!
//! 1. **validate** — every key vector resolves through the key B-trees
//!    and every value vector matches the measure arity *before* any
//!    byte changes, so a malformed batch is rejected wholesale;
//! 2. **stage** ([`stage_cells`]) — mutations are grouped by chunk
//!    (last write to a cell wins) and applied through
//!    `ChunkedArray::apply_chunk_writes`, which pins each chunk's
//!    decoded pre-image in the pool's `VersionTable` (keyed by the
//!    array's uid + chunk number, stable across relocation) before the
//!    first overwritten byte, keeping concurrent scans consistent. If
//!    any chunk fails mid-batch, every chunk already applied is
//!    **rolled back** to its pinned pre-image and the batch's pins are
//!    dropped — no torn prefix survives to the next publish or
//!    checkpoint. If even the rollback fails, the pool's write path is
//!    poisoned: later writes and checkpoints refuse, and the orphaned
//!    pins keep shielding readers;
//! 3. **checkpoint** — `BufferPool::checkpoint` journals every dirty
//!    page to the WAL, syncs the log, writes the data pages, syncs
//!    them, and truncates the log (log → sync → apply → checkpoint).
//!    A crash before the WAL sync loses the whole batch; after it, WAL
//!    replay on the next `Database` open completes the batch — never a
//!    torn prefix. A checkpoint *error* rolls the staged batch back;
//! 4. **publish** ([`PendingCells::publish`]) — only after durability:
//!    the version table's commit generation advances, so new snapshots
//!    read the batch and old snapshots keep their pinned pre-images.
//!    No reader can ever observe a state a crash would roll back;
//! 5. **maintain** — each cell delta is routed through the same
//!    IndexToIndex remaps the consolidation kernels use and patched
//!    into every affected cached [`crate::ResultCube`]
//!    ([`crate::rescache::PatchSession`]), costing O(affected cells ×
//!    cached cubes) instead of a cache flush. MIN/MAX shrinking
//!    updates drop just their cube (recomputed lazily).
//!
//! [`CubeMaintenance::InvalidateAll`] preserves the old flush-the-world
//! behavior for comparison benchmarks and tests.
//!
//! # Commit protocol spec
//!
//! `molap-lint`'s `protocol-order` rule enforces the ordering above
//! from this table (the same module-doc-as-spec pattern the wire
//! protocol uses): in every `scope` file, a durable checkpoint must
//! dominate each publish effect, and no ack may be constructed before
//! the checkpoint. `primitive` rows name the single-step protocol
//! implementations that are exempt themselves but whose callers must
//! bracket them correctly.
//!
//! | role | token |
//! |------|-------|
//! | scope | `crates/core/src/write.rs` |
//! | scope | `crates/core/src/catalog.rs` |
//! | scope | `crates/server/src/server.rs` |
//! | checkpoint-fn | `checkpoint` |
//! | publish-fn | `publish` |
//! | publish-fn | `publish_writes` |
//! | publish-fn | `commit_publish` |
//! | primitive | `publish` |
//! | primitive | `publish_writes` |
//! | primitive | `commit_publish` |
//! | ack-marker | `Response::WriteAck` |
//! | ack-marker | `WriteReceipt {` |

use crate::adt::OlapArray;
use crate::error::{Error, Result};
use crate::rescache;
use molap_array::{shared_version_table, Chunk};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One committed cell mutation, in array coordinates: `old` is the
/// cell's pre-batch measures (`None` for a fresh cell), `new` what the
/// batch wrote. The currency between the write path and the result
/// cache's delta maintenance.
#[derive(Clone, Debug)]
pub(crate) struct CellDelta {
    /// Array coordinates of the cell (one entry per dimension).
    pub coords: Vec<u32>,
    /// Pre-batch measures; `None` if the cell was empty.
    pub old: Option<Vec<i64>>,
    /// Post-batch measures.
    pub new: Vec<i64>,
}

/// A set of cell mutations committed as one atomic, durable unit.
#[derive(Clone, Debug, Default)]
pub struct WriteBatch {
    rows: Vec<(Vec<i64>, Vec<i64>)>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        WriteBatch::default()
    }

    /// Queues one mutation: write `values` (one per measure) to the
    /// cell addressed by dimension `keys`. Later writes to the same
    /// cell within a batch win.
    pub fn set(&mut self, keys: &[i64], values: &[i64]) {
        self.rows.push((keys.to_vec(), values.to_vec()));
    }

    /// Number of queued mutations (before same-cell coalescing).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The queued `(keys, values)` rows, in insertion order.
    pub fn rows(&self) -> &[(Vec<i64>, Vec<i64>)] {
        &self.rows
    }
}

/// How a committed batch treats the pool's cached result cubes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CubeMaintenance {
    /// Patch affected cached cubes in place (drop only the MIN/MAX
    /// recompute fallbacks) — the default.
    Delta,
    /// Bump the cache-wide write generation, cooling every entry on
    /// the pool — the pre-delta baseline, kept for comparison.
    InvalidateAll,
}

/// What a committed batch did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WriteReceipt {
    /// Distinct cells written (after same-cell last-write-wins).
    pub cells_written: u64,
    /// Cached result cubes patched in place.
    pub cubes_patched: u64,
    /// Cached result cubes dropped to the recompute fallback.
    pub cubes_dropped: u64,
}

/// Commits `batch` durably (WAL-backed checkpoint) with delta-
/// maintained result cubes. See the module docs for the protocol.
pub fn apply_batch(adt: &mut OlapArray, batch: &WriteBatch) -> Result<WriteReceipt> {
    apply_cells(adt, batch.rows(), true, CubeMaintenance::Delta)
}

/// [`apply_batch`] with an explicit cache-maintenance policy (the
/// benchmark's invalidate-all baseline goes through here).
pub fn apply_batch_with(
    adt: &mut OlapArray,
    batch: &WriteBatch,
    maintenance: CubeMaintenance,
) -> Result<WriteReceipt> {
    apply_cells(adt, batch.rows(), true, maintenance)
}

/// A chunk [`stage_cells`] already rewrote, with everything needed to
/// reverse it: the decoded pre-image and how many cells the rewrite
/// inserted.
struct AppliedChunk {
    chunk_no: u64,
    pre: Arc<Chunk>,
    cells_added: u64,
}

/// A staged-but-unpublished batch: every chunk is rewritten and pinned,
/// nothing is visible to readers yet. Exactly one of
/// [`PendingCells::publish`] / [`PendingCells::rollback`] must follow —
/// publish after the batch is durable, rollback when durability failed.
pub(crate) struct PendingCells {
    session: Option<rescache::PatchSession>,
    maintenance: CubeMaintenance,
    deltas: Vec<CellDelta>,
    applied: Vec<AppliedChunk>,
}

impl PendingCells {
    /// Makes the staged batch visible — version-table publish first,
    /// then result-cube maintenance — and returns the receipt.
    pub(crate) fn publish(self, adt: &mut OlapArray) -> Result<WriteReceipt> {
        adt.array_mut().publish_writes();
        let (cubes_patched, cubes_dropped) = match (self.session, self.maintenance) {
            (Some(session), _) => session.commit(adt, &self.deltas)?,
            (None, CubeMaintenance::InvalidateAll) => {
                rescache::invalidate_writes(adt.pool());
                (0, 0)
            }
            (None, CubeMaintenance::Delta) => (0, 0), // no cache on this pool
        };
        let stats = adt.pool().stats();
        stats.write_batch();
        stats.write_cells_add(self.deltas.len() as u64);
        Ok(WriteReceipt {
            cells_written: self.deltas.len() as u64,
            cubes_patched,
            cubes_dropped,
        })
    }

    /// Restores every staged chunk to its pre-image and drops the
    /// batch's pins; readers never see any of it. If a restore fails,
    /// the pool's write path is poisoned instead (the pins stay,
    /// shielding readers; writes and checkpoints refuse from then on).
    pub(crate) fn rollback(self, adt: &mut OlapArray) {
        let mut restored = true;
        for chunk in &self.applied {
            if adt
                .array_mut()
                .restore_chunk(chunk.chunk_no, &chunk.pre, chunk.cells_added)
                .is_err()
            {
                restored = false;
            }
        }
        if restored {
            adt.array_mut().rollback_writes();
        } else {
            adt.array().poison_writes();
        }
        // The abandoned PatchSession drops here: the cache entries it
        // snapshotted still describe the (restored) array state.
    }
}

/// Validates and applies `rows` to the array without publishing:
/// readers keep resolving every touched chunk to its pinned pre-image.
/// A mid-batch failure rolls back internally and returns the error; a
/// success hands back a [`PendingCells`] the caller must publish (after
/// making the batch durable) or roll back.
pub(crate) fn stage_cells(
    adt: &mut OlapArray,
    rows: &[(Vec<i64>, Vec<i64>)],
    maintenance: CubeMaintenance,
) -> Result<PendingCells> {
    // Captured before any mutation: the OnceLock freezes the pre-write
    // fingerprint, which is what readers key cache entries by.
    let array_id = adt.identity_hash();
    let n_measures = adt.n_measures();

    // Validate everything up front; a bad row rejects the whole batch
    // before a single byte changes.
    // chunk_no → offset → (coords, values); BTreeMaps make the chunk
    // application order deterministic and the inner map implements
    // last-write-wins per cell.
    type ChunkEdits = BTreeMap<u32, (Vec<u32>, Vec<i64>)>;
    let mut by_chunk: BTreeMap<u64, ChunkEdits> = BTreeMap::new();
    for (keys, values) in rows {
        if values.len() != n_measures {
            return Err(Error::Data(format!(
                "{} values for {} measures",
                values.len(),
                n_measures
            )));
        }
        let coords = adt
            .keys_to_coords(keys)?
            .ok_or_else(|| Error::Data("a key does not exist in its dimension table".into()))?;
        let (chunk_no, offset) = adt.array().shape().locate(&coords)?;
        by_chunk
            .entry(chunk_no)
            .or_default()
            .insert(offset, (coords, values.clone()));
    }

    // Snapshot the patch candidates before the first overwritten byte
    // (see `rescache::PatchSession` for why the order matters).
    let session = match maintenance {
        CubeMaintenance::Delta => rescache::begin_write_patch(adt.pool(), array_id),
        CubeMaintenance::InvalidateAll => None,
    };

    let mut pending = PendingCells {
        session,
        maintenance,
        deltas: Vec::new(),
        applied: Vec::new(),
    };
    for (chunk_no, cells) in by_chunk {
        let edits: Vec<(u32, Vec<i64>)> = cells
            .iter()
            .map(|(&off, (_, values))| (off, values.clone()))
            .collect();
        // The pre-image, captured for rollback before the rewrite. A
        // cache hit in the common case (apply re-reads it right after).
        let pre = match adt.array().read_chunk(chunk_no) {
            Ok(pre) => pre,
            Err(e) => {
                pending.rollback(adt);
                return Err(e.into());
            }
        };
        match adt.array_mut().apply_chunk_writes(chunk_no, &edits) {
            Ok(olds) => {
                let cells_added = olds.iter().filter(|o| o.is_none()).count() as u64;
                pending.applied.push(AppliedChunk {
                    chunk_no,
                    pre,
                    cells_added,
                });
                for ((_, (coords, values)), old) in cells.into_iter().zip(olds) {
                    pending.deltas.push(CellDelta {
                        coords,
                        old,
                        new: values,
                    });
                }
            }
            Err(e) => {
                // The failing chunk may be half-written (`valid_cells`
                // untouched): restore it along with the earlier ones.
                pending.applied.push(AppliedChunk {
                    chunk_no,
                    pre,
                    cells_added: 0,
                });
                pending.rollback(adt);
                return Err(e.into());
            }
        }
    }
    Ok(pending)
}

/// The shared write engine: stages under the pool's commit section,
/// optionally checkpoints for durability (rolling back on failure), and
/// publishes. `OlapArray::set_by_keys` calls this with `durable =
/// false` (its historical contract: the mutation becomes visible
/// immediately and lives in the pool until the next checkpoint).
pub(crate) fn apply_cells(
    adt: &mut OlapArray,
    rows: &[(Vec<i64>, Vec<i64>)],
    durable: bool,
    maintenance: CubeMaintenance,
) -> Result<WriteReceipt> {
    if rows.is_empty() {
        return Ok(WriteReceipt::default());
    }
    let versions = shared_version_table(adt.pool());
    let _commit = versions.as_deref().map(|v| v.commit_section());
    // lint:allow(lock-io): the commit section deliberately spans stage → checkpoint → publish so readers never observe a half-applied batch (DESIGN.md §9)
    let pending = stage_cells(adt, rows, maintenance)?;
    if durable {
        // lint:allow(lock-io): the durable checkpoint is the point of the commit section — it must complete before publish makes the batch visible (DESIGN.md §9)
        if let Err(e) = adt.pool().checkpoint() {
            // lint:allow(lock-io): rollback restores overwritten bytes and must stay inside the commit section that covered the failed checkpoint (DESIGN.md §9)
            pending.rollback(adt);
            return Err(e.into());
        }
    }
    // lint:allow(lock-io): publish flips versions (and write-dates delta cubes) under the same commit section that checkpointed them (DESIGN.md §9)
    pending.publish(adt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::DimensionTable;
    use crate::query::{DimGrouping, Query};
    use molap_array::ChunkFormat;
    use molap_storage::{BufferPool, MemDisk};
    use std::sync::Arc;

    fn build() -> OlapArray {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 512));
        let dims = vec![
            DimensionTable::build(
                "store",
                &(0..8i64).collect::<Vec<_>>(),
                vec![("region", (0..8i64).map(|k| k / 4).collect())],
            )
            .unwrap(),
            DimensionTable::build("product", &(0..4i64).collect::<Vec<_>>(), vec![]).unwrap(),
        ];
        let cells: Vec<(Vec<i64>, Vec<i64>)> = (0..8i64)
            .flat_map(|s| (0..4i64).map(move |p| (vec![s, p], vec![s * 100 + p])))
            .collect();
        OlapArray::build(pool, dims, &[4, 2], ChunkFormat::Dense, cells, 1).unwrap()
    }

    #[test]
    fn batch_applies_with_last_write_wins() {
        let mut adt = build();
        let mut batch = WriteBatch::new();
        batch.set(&[0, 0], &[-7]);
        batch.set(&[3, 2], &[555]);
        batch.set(&[0, 0], &[42]); // later write to the same cell wins
        assert_eq!(batch.len(), 3);
        let receipt = apply_batch(&mut adt, &batch).unwrap();
        assert_eq!(receipt.cells_written, 2, "same-cell writes coalesce");
        assert_eq!(adt.get_by_keys(&[0, 0]).unwrap(), Some(vec![42]));
        assert_eq!(adt.get_by_keys(&[3, 2]).unwrap(), Some(vec![555]));
        assert_eq!(adt.get_by_keys(&[1, 1]).unwrap(), Some(vec![101]));
    }

    #[test]
    fn diffseq_arrays_round_trip_write_batches() {
        // DiffSeq chunks rebuild through the same decode-once path as
        // chunk-offset: the batch decodes the block, applies all its
        // cells, and re-encodes to the diff-seq wire format.
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 512));
        let dims = vec![
            DimensionTable::build(
                "store",
                &(0..8i64).collect::<Vec<_>>(),
                vec![("region", (0..8i64).map(|k| k / 4).collect())],
            )
            .unwrap(),
            DimensionTable::build("product", &(0..4i64).collect::<Vec<_>>(), vec![]).unwrap(),
        ];
        // Sparse seed: leave holes for the batch to insert into.
        let cells: Vec<(Vec<i64>, Vec<i64>)> = (0..8i64)
            .flat_map(|s| (0..4i64).map(move |p| (vec![s, p], vec![s * 100 + p])))
            .filter(|(k, _)| (k[0] + k[1]) % 2 == 0)
            .collect();
        let mut adt =
            OlapArray::build(pool, dims, &[4, 2], ChunkFormat::DiffSeq, cells, 1).unwrap();

        let mut batch = WriteBatch::new();
        batch.set(&[0, 0], &[-7]); // overwrite an existing cell
        batch.set(&[0, 1], &[71]); // insert into a hole
        batch.set(&[7, 2], &[99]); // insert near the chunk edge
        let receipt = apply_batch(&mut adt, &batch).unwrap();
        assert_eq!(receipt.cells_written, 3);
        assert_eq!(adt.get_by_keys(&[0, 0]).unwrap(), Some(vec![-7]));
        assert_eq!(adt.get_by_keys(&[0, 1]).unwrap(), Some(vec![71]));
        assert_eq!(adt.get_by_keys(&[7, 2]).unwrap(), Some(vec![99]));
        assert_eq!(adt.get_by_keys(&[1, 2]).unwrap(), None, "hole stays a hole");

        // A second batch re-decodes the rewritten diff-seq bytes.
        let mut batch = WriteBatch::new();
        batch.set(&[0, 1], &[72]);
        apply_batch(&mut adt, &batch).unwrap();
        assert_eq!(adt.get_by_keys(&[0, 1]).unwrap(), Some(vec![72]));

        // Scans over the rewritten array agree with a per-cell walk.
        let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop]);
        assert_eq!(
            crate::consolidate_pipelined(&adt, &q, 2, crate::PrefetchPlan::new(2, 4)).unwrap(),
            adt.consolidate(&q).unwrap()
        );
    }

    #[test]
    fn bad_batch_is_rejected_wholesale() {
        let mut adt = build();
        let mut batch = WriteBatch::new();
        batch.set(&[0, 0], &[1]);
        batch.set(&[99, 0], &[2]); // unknown key
        assert!(apply_batch(&mut adt, &batch).is_err());
        // The valid row before the bad one was not applied.
        assert_eq!(adt.get_by_keys(&[0, 0]).unwrap(), Some(vec![0]));
        let mut batch = WriteBatch::new();
        batch.set(&[0, 0], &[1, 2]); // measure arity
        assert!(apply_batch(&mut adt, &batch).is_err());
        assert!(WriteBatch::new().is_empty());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut adt = build();
        let receipt = apply_batch(&mut adt, &WriteBatch::new()).unwrap();
        assert_eq!(receipt, WriteReceipt::default());
    }

    #[test]
    fn delta_maintenance_keeps_cached_results_exact() {
        let mut adt = build();
        let queries = [
            Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop]),
            Query::new(vec![DimGrouping::Key, DimGrouping::Key]),
            Query::new(vec![DimGrouping::Drop, DimGrouping::Drop]),
        ];
        // Warm the cache.
        for q in &queries {
            crate::consolidate_auto(&adt, q).unwrap();
        }
        let mut batch = WriteBatch::new();
        batch.set(&[2, 1], &[100_000]); // grows SUM/MAX: patchable
        batch.set(&[5, 3], &[99_999]);
        let receipt = apply_batch(&mut adt, &batch).unwrap();
        assert!(receipt.cubes_patched > 0, "cubes stayed warm");
        // Patched cache answers equal scratch recomputation.
        for q in &queries {
            let cached = crate::consolidate_auto(&adt, q).unwrap();
            assert_eq!(cached, adt.consolidate(q).unwrap(), "{q:?}");
        }
        let stats = adt.pool().stats().snapshot();
        assert!(stats.result_cache_patched > 0);
        assert_eq!(stats.write_batches, 1);
        assert_eq!(stats.write_cells, 2);
    }

    #[test]
    fn shrinking_max_falls_back_to_recompute() {
        let mut adt = build();
        let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop]);
        crate::consolidate_auto(&adt, &q).unwrap();
        // Cell [3,3] holds 303, the max of region 0; shrink it.
        let mut batch = WriteBatch::new();
        batch.set(&[3, 3], &[-1]);
        let receipt = apply_batch(&mut adt, &batch).unwrap();
        assert!(receipt.cubes_dropped > 0, "MIN/MAX fallback dropped");
        assert_eq!(
            crate::consolidate_auto(&adt, &q).unwrap(),
            adt.consolidate(&q).unwrap()
        );
    }

    #[test]
    fn staged_batch_is_invisible_until_published() {
        let mut adt = build();
        // Stage overwrites to the first and last chunks without
        // publishing.
        let rows = vec![(vec![0i64, 0], vec![-1i64]), (vec![7, 3], vec![-2])];
        let pending = stage_cells(&mut adt, &rows, CubeMaintenance::Delta).unwrap();
        // The bytes are rewritten, but every read resolves the staged
        // chunks to their pinned pre-images — even through the
        // writer's own handle.
        assert_eq!(adt.get_by_keys(&[0, 0]).unwrap(), Some(vec![0]));
        assert_eq!(adt.get_by_keys(&[7, 3]).unwrap(), Some(vec![703]));
        let receipt = pending.publish(&mut adt).unwrap();
        assert_eq!(receipt.cells_written, 2);
        assert_eq!(adt.get_by_keys(&[0, 0]).unwrap(), Some(vec![-1]));
        assert_eq!(adt.get_by_keys(&[7, 3]).unwrap(), Some(vec![-2]));
    }

    #[test]
    fn rollback_restores_pre_images_and_frees_pins() {
        let mut adt = build();
        let q = Query::new(vec![DimGrouping::Drop, DimGrouping::Drop]);
        let before = adt.consolidate(&q).unwrap();
        let valid_before = adt.array().valid_cells();

        let rows = vec![(vec![0i64, 0], vec![999_999i64]), (vec![7, 3], vec![-5])];
        let pending = stage_cells(&mut adt, &rows, CubeMaintenance::Delta).unwrap();
        pending.rollback(&mut adt);

        // Cell values, totals, and the valid-cell count are all back.
        assert_eq!(adt.get_by_keys(&[0, 0]).unwrap(), Some(vec![0]));
        assert_eq!(adt.get_by_keys(&[7, 3]).unwrap(), Some(vec![703]));
        assert_eq!(adt.consolidate(&q).unwrap(), before);
        assert_eq!(adt.array().valid_cells(), valid_before);
        // The batch's pins were dropped, not leaked.
        let vt = shared_version_table(adt.pool()).unwrap();
        assert_eq!(vt.pinned_versions(), 0);
        // And the write path is healthy: a fresh batch commits.
        let mut batch = WriteBatch::new();
        batch.set(&[1, 1], &[77]);
        apply_batch(&mut adt, &batch).unwrap();
        assert_eq!(adt.get_by_keys(&[1, 1]).unwrap(), Some(vec![77]));
    }

    #[test]
    fn poisoned_pool_refuses_further_batches() {
        let mut adt = build();
        adt.array().poison_writes();
        let mut batch = WriteBatch::new();
        batch.set(&[0, 0], &[1]);
        let err = apply_batch(&mut adt, &batch).unwrap_err();
        assert!(
            err.to_string().contains("poisoned"),
            "unexpected error: {err}"
        );
        // Reads still work, shielded by whatever pins remain.
        assert_eq!(adt.get_by_keys(&[0, 0]).unwrap(), Some(vec![0]));
    }

    #[test]
    fn invalidate_all_baseline_cools_the_cache() {
        let mut adt = build();
        let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop]);
        crate::consolidate_auto(&adt, &q).unwrap();
        let before = adt.pool().stats().snapshot();
        let mut batch = WriteBatch::new();
        batch.set(&[0, 0], &[7]);
        let receipt = apply_batch_with(&mut adt, &batch, CubeMaintenance::InvalidateAll).unwrap();
        assert_eq!(receipt.cubes_patched, 0);
        crate::consolidate_auto(&adt, &q).unwrap();
        let delta = adt.pool().stats().snapshot().since(&before);
        assert_eq!(delta.result_cache_misses, 1, "cache went cold");
        assert_eq!(delta.result_cache_patched, 0);
    }
}
