//! Per-chunk aggregation kernels — the array analogue of vectorized
//! execution.
//!
//! The per-cell inner loops in `consolidate`/`select`/`parallel` pay a
//! full dispatch per valid cell: decode the cell's coordinates, walk the
//! grouped dimensions, bounds-check an IndexToIndex lookup each, then
//! re-derive the result cube's linear cell from the ranks. All of that
//! is invariant *per chunk* except the cell offset. A [`ChunkKernel`]
//! hoists it: for each relevant dimension it precomputes a within-chunk
//! remap table whose entry `w` is the dimension's whole contribution to
//! the result cell — `i2i[base + w] * cube_stride` — with a sentinel for
//! coordinates a §4.2 selection excludes (or array padding). The hot
//! loop is then `(offset, values)` → a few shifts/divides + table loads
//! → [`ResultCube::add_linear`].
//!
//! Kernels are used by the prefetch-pipeline consumers; the classic
//! per-cell paths are kept verbatim as the sequential oracle.

use molap_array::{Chunk, Shape};

use crate::consolidate::GroupMap;
use crate::result::ResultCube;

/// Remap-table sentinel: cells at this within-chunk coordinate are
/// excluded (selection miss or array padding).
const SKIP: u64 = u64::MAX;

struct DimTable {
    /// Within-chunk stride of the dimension in the offset encoding.
    cell_stride: u64,
    /// Chunk extent along the dimension.
    extent: u64,
    /// Within-chunk coordinate → result-cell contribution, or [`SKIP`].
    remap: Vec<u64>,
}

/// A once-per-chunk specialization of phase-2 aggregation.
pub(crate) struct ChunkKernel {
    tables: Vec<DimTable>,
}

impl ChunkKernel {
    /// Builds the kernel for `chunk_no`. `membership`, when present,
    /// holds the §4.2 scan-direction membership mask per dimension
    /// (indexed by within-chunk coordinate); dimensions that are
    /// neither grouped nor masked contribute nothing and get no table.
    pub(crate) fn new(
        shape: &Shape,
        maps: &[GroupMap],
        cube: &ResultCube,
        chunk_no: u64,
        membership: Option<&[Vec<bool>]>,
    ) -> Self {
        let n = shape.n_dims();
        let mut base = vec![0u32; n];
        shape.chunk_base(chunk_no, &mut base);
        let strides = cube.strides();
        let mut tables = Vec::new();
        for d in 0..n {
            let grouped = maps.iter().enumerate().find(|(_, m)| m.dim == d);
            let mask = membership.map(|m| m[d].as_slice());
            if grouped.is_none() && mask.is_none() {
                continue;
            }
            let extent = shape.chunk_dims()[d] as usize;
            let dim_len = shape.dims()[d] as usize;
            let remap: Vec<u64> = (0..extent)
                .map(|w| {
                    let idx = base[d] as usize + w;
                    if idx >= dim_len || mask.is_some_and(|m| !m[w]) {
                        SKIP
                    } else {
                        match grouped {
                            Some((g, map)) => map.i2i[idx] as u64 * strides[g] as u64,
                            None => 0,
                        }
                    }
                })
                .collect();
            tables.push(DimTable {
                cell_stride: shape.cell_stride(d),
                extent: extent as u64,
                remap,
            });
        }
        ChunkKernel { tables }
    }

    /// Aggregates every valid cell of `chunk` into `cube` through the
    /// precomputed tables. Equivalent (bit-identical: [`crate::aggregate::AggState`]
    /// folds are order-independent) to the per-cell rank path.
    pub(crate) fn apply(&self, chunk: &Chunk, cube: &mut ResultCube) {
        chunk.for_each_valid(|offset, values| {
            let mut cell = 0u64;
            for t in &self.tables {
                let within = (offset as u64 / t.cell_stride) % t.extent;
                let v = t.remap[within as usize];
                if v == SKIP {
                    return;
                }
                cell += v;
            }
            cube.add_linear(cell as usize, values);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adt::OlapArray;
    use crate::consolidate::{make_cube, phase1, BuildResultBtrees};
    use crate::dimension::DimensionTable;
    use crate::query::{DimGrouping, Query};
    use molap_array::ChunkFormat;
    use molap_storage::{BufferPool, MemDisk};
    use std::sync::Arc;

    fn build() -> OlapArray {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 2048));
        let dims = vec![
            DimensionTable::build(
                "a",
                &(0..10i64).collect::<Vec<_>>(),
                vec![("h", (0..10i64).map(|k| k % 3).collect())],
            )
            .unwrap(),
            DimensionTable::build(
                "b",
                &(0..8i64).collect::<Vec<_>>(),
                vec![("h", (0..8i64).map(|k| k / 4).collect())],
            )
            .unwrap(),
        ];
        let cells: Vec<(Vec<i64>, Vec<i64>)> = (0..10i64)
            .flat_map(|x| (0..8i64).map(move |y| (vec![x, y], vec![x * 10 + y])))
            .filter(|(k, _)| (k[0] + k[1]) % 2 == 0)
            .collect();
        // 4-wide chunks leave a padded last chunk along both dims.
        OlapArray::build(pool, dims, &[4, 3], ChunkFormat::ChunkOffset, cells, 1).unwrap()
    }

    #[test]
    fn kernel_matches_per_cell_aggregation() {
        let adt = build();
        for group_by in [
            vec![DimGrouping::Level(0), DimGrouping::Level(0)],
            vec![DimGrouping::Key, DimGrouping::Drop],
            vec![DimGrouping::Drop, DimGrouping::Drop],
        ] {
            let q = Query::new(group_by);
            let (maps, _) = phase1(&adt, &q, BuildResultBtrees::No).unwrap();
            let shape = adt.array().shape();

            // Per-cell reference path.
            let mut expect = make_cube(&maps, adt.n_measures());
            let mut ranks = vec![0u32; maps.len()];
            adt.array()
                .for_each_cell(|coords, values| {
                    for (g, map) in maps.iter().enumerate() {
                        ranks[g] = map.i2i[coords[map.dim] as usize];
                    }
                    expect.add(&ranks, values);
                })
                .unwrap();

            // Kernel path, chunk by chunk.
            let mut cube = make_cube(&maps, adt.n_measures());
            for chunk_no in 0..shape.num_chunks() {
                let chunk = adt.array().read_chunk(chunk_no).unwrap();
                let kernel = ChunkKernel::new(shape, &maps, &cube, chunk_no, None);
                kernel.apply(&chunk, &mut cube);
            }
            assert_eq!(
                cube.into_result(&q.aggs).unwrap(),
                expect.into_result(&q.aggs).unwrap(),
                "{q:?}"
            );
        }
    }

    #[test]
    fn membership_mask_excludes_cells() {
        let adt = build();
        let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop]);
        let (maps, _) = phase1(&adt, &q, BuildResultBtrees::No).unwrap();
        let shape = adt.array().shape();

        // Mask: keep only even within-chunk coordinates of dim 0.
        let mask = |d: usize| -> Vec<bool> {
            (0..shape.chunk_dims()[d] as usize)
                .map(|w| d != 0 || w % 2 == 0)
                .collect()
        };
        let membership: Vec<Vec<bool>> = (0..2).map(mask).collect();

        let mut cube = make_cube(&maps, adt.n_measures());
        for chunk_no in 0..shape.num_chunks() {
            let chunk = adt.array().read_chunk(chunk_no).unwrap();
            let kernel = ChunkKernel::new(shape, &maps, &cube, chunk_no, Some(&membership));
            kernel.apply(&chunk, &mut cube);
        }

        let mut expect = make_cube(&maps, adt.n_measures());
        let mut ranks = vec![0u32; maps.len()];
        adt.array()
            .for_each_cell(|coords, values| {
                if !shape.within_chunk(0, coords[0]).is_multiple_of(2) {
                    return;
                }
                for (g, map) in maps.iter().enumerate() {
                    ranks[g] = map.i2i[coords[map.dim] as usize];
                }
                expect.add(&ranks, values);
            })
            .unwrap();
        assert_eq!(
            cube.into_result(&q.aggs).unwrap(),
            expect.into_result(&q.aggs).unwrap()
        );
    }
}
