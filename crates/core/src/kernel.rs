//! Per-chunk aggregation kernels — the array analogue of vectorized
//! execution.
//!
//! The per-cell inner loops in `consolidate`/`select`/`parallel` pay a
//! full dispatch per valid cell: decode the cell's coordinates, walk the
//! grouped dimensions, bounds-check an IndexToIndex lookup each, then
//! re-derive the result cube's linear cell from the ranks. All of that
//! is invariant *per chunk* except the cell offset. A [`ChunkKernel`]
//! hoists it: for each relevant dimension it precomputes a within-chunk
//! remap table whose entry `w` is the dimension's whole contribution to
//! the result cell — `i2i[base + w] * cube_stride` — with a sentinel for
//! coordinates a §4.2 selection excludes (or array padding). The hot
//! loop is then `(offset, values)` → a few shifts/divides + table loads
//! → [`ResultCube::add_linear`].
//!
//! Kernels are used by the prefetch-pipeline consumers; the classic
//! per-cell paths are kept verbatim as the sequential oracle.

use molap_array::{Chunk, Shape};

use crate::consolidate::GroupMap;
use crate::result::ResultCube;

/// Remap-table sentinel: cells at this within-chunk coordinate are
/// excluded (selection miss or array padding).
const SKIP: u64 = u64::MAX;

/// Batch width of the streaming entry point — matches the diff-seq
/// decoder's block size so one decoded gap block is one kernel batch.
const BATCH: usize = molap_array::diffseq::BLOCK;

struct DimTable {
    /// Within-chunk stride of the dimension in the offset encoding.
    cell_stride: u64,
    /// Chunk extent along the dimension.
    extent: u64,
    /// Precomputed `ceil(2^64 / cell_stride)` for strength-reduced
    /// division in the batch path; `0` is the divisor-is-one sentinel
    /// (the true magic would overflow u64).
    stride_magic: u64,
    /// Same, for `extent`.
    extent_magic: u64,
    /// Within-chunk coordinate → result-cell contribution, or [`SKIP`].
    remap: Vec<u64>,
}

/// `ceil(2^64 / d)` as a u64, with `0` standing in for `d == 1`.
fn div_magic(d: u64) -> u64 {
    if d == 1 {
        0
    } else {
        u64::MAX / d + 1
    }
}

/// `n / d` via the precomputed magic. Exact for `n < 2^32`, `d < 2^32`
/// (Lemire, Kaser & Kurz, "Faster remainder by direct computation"),
/// which chunk geometry guarantees: offsets and strides both fit in
/// u32 because `Shape::new` caps the per-chunk cell count.
#[inline(always)]
fn fast_div(n: u64, magic: u64) -> u64 {
    if magic == 0 {
        n
    } else {
        ((magic as u128 * n as u128) >> 64) as u64
    }
}

/// A once-per-chunk specialization of phase-2 aggregation.
pub(crate) struct ChunkKernel {
    tables: Vec<DimTable>,
}

impl ChunkKernel {
    /// Builds the kernel for `chunk_no`. `membership`, when present,
    /// holds the §4.2 scan-direction membership mask per dimension
    /// (indexed by within-chunk coordinate); dimensions that are
    /// neither grouped nor masked contribute nothing and get no table.
    pub(crate) fn new(
        shape: &Shape,
        maps: &[GroupMap],
        cube: &ResultCube,
        chunk_no: u64,
        membership: Option<&[Vec<bool>]>,
    ) -> Self {
        let n = shape.n_dims();
        let mut base = vec![0u32; n];
        shape.chunk_base(chunk_no, &mut base);
        let strides = cube.strides();
        let mut tables = Vec::new();
        for d in 0..n {
            let grouped = maps.iter().enumerate().find(|(_, m)| m.dim == d);
            let mask = membership.map(|m| m[d].as_slice());
            if grouped.is_none() && mask.is_none() {
                continue;
            }
            let extent = shape.chunk_dims()[d] as usize;
            let dim_len = shape.dims()[d] as usize;
            let remap: Vec<u64> = (0..extent)
                .map(|w| {
                    let idx = base[d] as usize + w;
                    if idx >= dim_len || mask.is_some_and(|m| !m[w]) {
                        SKIP
                    } else {
                        match grouped {
                            Some((g, map)) => map.i2i[idx] as u64 * strides[g] as u64,
                            None => 0,
                        }
                    }
                })
                .collect();
            let cell_stride = shape.cell_stride(d);
            tables.push(DimTable {
                cell_stride,
                extent: extent as u64,
                stride_magic: div_magic(cell_stride),
                extent_magic: div_magic(extent as u64),
                remap,
            });
        }
        ChunkKernel { tables }
    }

    /// Aggregates every valid cell of `chunk` into `cube` through the
    /// precomputed tables. Equivalent (bit-identical: [`crate::aggregate::AggState`]
    /// folds are order-independent) to the per-cell rank path.
    pub(crate) fn apply(&self, chunk: &Chunk, cube: &mut ResultCube) {
        chunk.for_each_valid(|offset, values| {
            let mut cell = 0u64;
            for t in &self.tables {
                let within = (offset as u64 / t.cell_stride) % t.extent;
                let v = t.remap[within as usize];
                if v == SKIP {
                    return;
                }
                cell += v;
            }
            cube.add_linear(cell as usize, values);
        });
    }

    /// Streaming entry point: aggregates a decoded `(offset, measures)`
    /// batch without a materialized [`Chunk`]. `values` is row-major,
    /// `offsets.len() * n_measures` long — exactly what
    /// [`molap_array::diffseq::DiffSeqCursor::next_batch`] yields.
    ///
    /// The remap phase runs column-wise over a fixed-width cell buffer
    /// with strength-reduced division and no per-cell branching:
    /// excluded cells saturate to [`SKIP`] and are dropped in the final
    /// scatter. Bit-identical to [`ChunkKernel::apply`] (aggregate
    /// folds are order-independent).
    pub(crate) fn apply_batch(
        &self,
        offsets: &[u32],
        values: &[i64],
        n_measures: usize,
        cube: &mut ResultCube,
    ) {
        debug_assert_eq!(values.len(), offsets.len() * n_measures);
        let mut cells = [0u64; BATCH];
        for (block, offs) in offsets.chunks(BATCH).enumerate() {
            let k = offs.len();
            cells[..k].fill(0);
            for t in &self.tables {
                for (cell, &off) in cells[..k].iter_mut().zip(offs) {
                    let q = fast_div(off as u64, t.stride_magic);
                    let within = q - fast_div(q, t.extent_magic) * t.extent;
                    // SKIP is u64::MAX, so a masked dimension pins the
                    // cell at SKIP no matter what later tables add.
                    *cell = cell.saturating_add(t.remap[within as usize]);
                }
            }
            for (i, &cell) in cells[..k].iter().enumerate() {
                if cell != SKIP {
                    let row = (block * BATCH + i) * n_measures;
                    cube.add_linear(cell as usize, &values[row..row + n_measures]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adt::OlapArray;
    use crate::consolidate::{make_cube, phase1, BuildResultBtrees};
    use crate::dimension::DimensionTable;
    use crate::query::{DimGrouping, Query};
    use molap_array::ChunkFormat;
    use molap_storage::{BufferPool, MemDisk};
    use std::sync::Arc;

    fn build() -> OlapArray {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 2048));
        let dims = vec![
            DimensionTable::build(
                "a",
                &(0..10i64).collect::<Vec<_>>(),
                vec![("h", (0..10i64).map(|k| k % 3).collect())],
            )
            .unwrap(),
            DimensionTable::build(
                "b",
                &(0..8i64).collect::<Vec<_>>(),
                vec![("h", (0..8i64).map(|k| k / 4).collect())],
            )
            .unwrap(),
        ];
        let cells: Vec<(Vec<i64>, Vec<i64>)> = (0..10i64)
            .flat_map(|x| (0..8i64).map(move |y| (vec![x, y], vec![x * 10 + y])))
            .filter(|(k, _)| (k[0] + k[1]) % 2 == 0)
            .collect();
        // 4-wide chunks leave a padded last chunk along both dims.
        OlapArray::build(pool, dims, &[4, 3], ChunkFormat::ChunkOffset, cells, 1).unwrap()
    }

    #[test]
    fn kernel_matches_per_cell_aggregation() {
        let adt = build();
        for group_by in [
            vec![DimGrouping::Level(0), DimGrouping::Level(0)],
            vec![DimGrouping::Key, DimGrouping::Drop],
            vec![DimGrouping::Drop, DimGrouping::Drop],
        ] {
            let q = Query::new(group_by);
            let (maps, _) = phase1(&adt, &q, BuildResultBtrees::No).unwrap();
            let shape = adt.array().shape();

            // Per-cell reference path.
            let mut expect = make_cube(&maps, adt.n_measures());
            let mut ranks = vec![0u32; maps.len()];
            adt.array()
                .for_each_cell(|coords, values| {
                    for (g, map) in maps.iter().enumerate() {
                        ranks[g] = map.i2i[coords[map.dim] as usize];
                    }
                    expect.add(&ranks, values);
                })
                .unwrap();

            // Kernel path, chunk by chunk.
            let mut cube = make_cube(&maps, adt.n_measures());
            for chunk_no in 0..shape.num_chunks() {
                let chunk = adt.array().read_chunk(chunk_no).unwrap();
                let kernel = ChunkKernel::new(shape, &maps, &cube, chunk_no, None);
                kernel.apply(&chunk, &mut cube);
            }
            assert_eq!(
                cube.into_result(&q.aggs).unwrap(),
                expect.into_result(&q.aggs).unwrap(),
                "{q:?}"
            );
        }
    }

    #[test]
    fn batch_path_matches_apply() {
        // The streaming batch entry point (strength-reduced division,
        // saturating SKIP accumulation) must agree with the per-cell
        // `apply` on every grouping shape, including masked dimensions
        // and ragged batch tails.
        let adt = build();
        let shape = adt.array().shape();
        let mask: Vec<Vec<bool>> = (0..2)
            .map(|d| {
                (0..shape.chunk_dims()[d] as usize)
                    .map(|w| d != 0 || w % 2 == 0)
                    .collect()
            })
            .collect();
        for group_by in [
            vec![DimGrouping::Level(0), DimGrouping::Level(0)],
            vec![DimGrouping::Key, DimGrouping::Drop],
            vec![DimGrouping::Drop, DimGrouping::Drop],
        ] {
            for membership in [None, Some(&mask)] {
                let q = Query::new(group_by.clone());
                let (maps, _) = phase1(&adt, &q, BuildResultBtrees::No).unwrap();
                let mut expect = make_cube(&maps, adt.n_measures());
                let mut cube = make_cube(&maps, adt.n_measures());
                for chunk_no in 0..shape.num_chunks() {
                    let chunk = adt.array().read_chunk(chunk_no).unwrap();
                    let kernel = ChunkKernel::new(
                        shape,
                        &maps,
                        &cube,
                        chunk_no,
                        membership.map(|m| m.as_slice()),
                    );
                    kernel.apply(&chunk, &mut expect);
                    // Re-batch the chunk's cells in uneven slices so
                    // both the full-BATCH and tail paths are hit.
                    let mut offsets = Vec::new();
                    let mut values = Vec::new();
                    chunk.for_each_valid(|off, vals| {
                        offsets.push(off);
                        values.extend_from_slice(vals);
                    });
                    let p = adt.n_measures();
                    let mut at = 0;
                    for step in [1usize, 3, BATCH, BATCH + 7] {
                        if at >= offsets.len() {
                            break;
                        }
                        let end = (at + step).min(offsets.len());
                        kernel.apply_batch(
                            &offsets[at..end],
                            &values[at * p..end * p],
                            p,
                            &mut cube,
                        );
                        at = end;
                    }
                    if at < offsets.len() {
                        kernel.apply_batch(&offsets[at..], &values[at * p..], p, &mut cube);
                    }
                }
                assert_eq!(
                    cube.into_result(&q.aggs).unwrap(),
                    expect.into_result(&q.aggs).unwrap(),
                    "{group_by:?} masked={}",
                    membership.is_some()
                );
            }
        }
    }

    #[test]
    fn membership_mask_excludes_cells() {
        let adt = build();
        let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop]);
        let (maps, _) = phase1(&adt, &q, BuildResultBtrees::No).unwrap();
        let shape = adt.array().shape();

        // Mask: keep only even within-chunk coordinates of dim 0.
        let mask = |d: usize| -> Vec<bool> {
            (0..shape.chunk_dims()[d] as usize)
                .map(|w| d != 0 || w % 2 == 0)
                .collect()
        };
        let membership: Vec<Vec<bool>> = (0..2).map(mask).collect();

        let mut cube = make_cube(&maps, adt.n_measures());
        for chunk_no in 0..shape.num_chunks() {
            let chunk = adt.array().read_chunk(chunk_no).unwrap();
            let kernel = ChunkKernel::new(shape, &maps, &cube, chunk_no, Some(&membership));
            kernel.apply(&chunk, &mut cube);
        }

        let mut expect = make_cube(&maps, adt.n_measures());
        let mut ranks = vec![0u32; maps.len()];
        adt.array()
            .for_each_cell(|coords, values| {
                if !shape.within_chunk(0, coords[0]).is_multiple_of(2) {
                    return;
                }
                for (g, map) in maps.iter().enumerate() {
                    ranks[g] = map.i2i[coords[map.dim] as usize];
                }
                expect.add(&ranks, values);
            })
            .unwrap();
        assert_eq!(
            cube.into_result(&q.aggs).unwrap(),
            expect.into_result(&q.aggs).unwrap()
        );
    }
}
