//! The CUBE operator: every GROUP BY subset in one pass.
//!
//! The authors' companion work ([ZDN97], cited in §1) computes all
//! `2ⁿ` group-bys of a cube simultaneously from the array
//! representation. This module implements the array-friendly version of
//! that idea on top of the §4.1 consolidation:
//!
//! 1. one array scan produces the *finest* result cube (all requested
//!    dimensions grouped), positionally;
//! 2. every coarser group-by is then computed by projecting the
//!    **smallest already-computed parent** — never rescanning the
//!    array — exploiting that aggregate states merge associatively.
//!
//! For the paper's SUM (and COUNT/MIN/MAX/AVG) this reproduces exactly
//! what 2ⁿ independent consolidations would return, at a fraction of
//! the cost.

use crate::adt::OlapArray;
use crate::consolidate::{make_cube, phase1, BuildResultBtrees};
use crate::error::{Error, Result};
use crate::query::Query;
use crate::result::{ConsolidationResult, ResultCube};

/// Upper bound on grouped dimensions (2ⁿ results must stay sane).
const MAX_CUBE_DIMS: usize = 12;

/// One group-by of the cube: which of the requested grouping
/// dimensions are active, and its rows.
#[derive(Clone, Debug)]
pub struct CubeSlice {
    /// Mask over the *grouped* dimensions of the request (not over all
    /// cube dimensions): `mask[i]` is true if grouped dimension `i`
    /// participates in this slice's GROUP BY.
    pub mask: Vec<bool>,
    /// The slice's result rows.
    pub result: ConsolidationResult,
}

/// Computes every GROUP BY subset of `query.group_by`'s grouped
/// dimensions. `query` must have no selections (combine with the §4.2
/// path by consolidating first if needed).
///
/// Returns `2^g` slices (g = grouped dimensions), finest first.
pub fn compute_cube(adt: &OlapArray, query: &Query) -> Result<Vec<CubeSlice>> {
    query.validate(adt.dims(), adt.n_measures())?;
    if query.has_selection() {
        return Err(Error::Query(
            "compute_cube does not take selections; filter with consolidate() instead".into(),
        ));
    }
    let (maps, _btrees) = phase1(adt, query, BuildResultBtrees::No)?;
    let g = maps.len();
    if g > MAX_CUBE_DIMS {
        return Err(Error::Query(format!(
            "CUBE over {g} dimensions would produce 2^{g} group-bys"
        )));
    }

    // Finest cube: one positional array scan (§4.1 phase 2).
    let mut finest = make_cube(&maps, adt.n_measures());
    let mut ranks = vec![0u32; g];
    adt.array().for_each_cell(|coords, values| {
        for (i, map) in maps.iter().enumerate() {
            ranks[i] = map.i2i[coords[map.dim] as usize];
        }
        finest.add(&ranks, values);
    })?;

    // Lattice walk: for each mask (descending popcount), project from
    // the smallest computed parent differing by exactly one dimension.
    let total = 1usize << g;
    let mut cubes: Vec<Option<ResultCube>> = vec![None; total];
    cubes[total - 1] = Some(finest);

    let mut order: Vec<usize> = (0..total).collect();
    order.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));

    for &mask in &order {
        if cubes[mask].is_some() {
            continue;
        }
        // Parents: mask with one extra bit set. The descending-popcount
        // walk guarantees at least one is already computed.
        let (parent, parent_cube) = (0..g)
            .filter(|&b| mask & (1 << b) == 0)
            .map(|b| mask | (1 << b))
            .filter_map(|p| cubes.get(p).and_then(|c| c.as_ref()).map(|c| (p, c)))
            .min_by_key(|(_, c)| c.num_cells())
            .ok_or_else(|| {
                Error::Internal(format!(
                    "cube lattice walk found no parent for mask {mask:#b}"
                ))
            })?;
        // Project away the dimensions absent from `mask`, expressed in
        // the parent's dimension order.
        let keep: Vec<bool> = (0..g)
            .filter(|&b| parent & (1 << b) != 0)
            .map(|b| mask & (1 << b) != 0)
            .collect();
        let projected = parent_cube.project(&keep)?;
        match cubes.get_mut(mask) {
            Some(slot) => *slot = Some(projected),
            None => {
                return Err(Error::Internal(format!(
                    "mask {mask:#b} outside cube lattice"
                )))
            }
        }
    }

    let mut slices = Vec::with_capacity(total);
    for &mask in &order {
        let cube = cubes.get_mut(mask).and_then(|c| c.take()).ok_or_else(|| {
            Error::Internal(format!("cube lattice slot {mask:#b} was never computed"))
        })?;
        slices.push(CubeSlice {
            mask: (0..g).map(|b| mask & (1 << b) != 0).collect(),
            result: cube.into_result(&query.aggs)?,
        });
    }
    Ok(slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::DimensionTable;
    use crate::query::DimGrouping;
    use crate::query::{AttrRef, Selection};
    use molap_array::ChunkFormat;
    use molap_storage::{BufferPool, MemDisk};
    use std::sync::Arc;

    fn build() -> OlapArray {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 4096));
        let dims = vec![
            DimensionTable::build(
                "a",
                &(0..10i64).collect::<Vec<_>>(),
                vec![("h", (0..10i64).map(|k| k / 4).collect())],
            )
            .unwrap(),
            DimensionTable::build(
                "b",
                &(0..8i64).collect::<Vec<_>>(),
                vec![("h", (0..8i64).map(|k| k % 3).collect())],
            )
            .unwrap(),
            DimensionTable::build(
                "c",
                &(0..6i64).collect::<Vec<_>>(),
                vec![("h", (0..6i64).map(|k| k % 2).collect())],
            )
            .unwrap(),
        ];
        let cells: Vec<(Vec<i64>, Vec<i64>)> = (0..10i64)
            .flat_map(|x| (0..8i64).flat_map(move |y| (0..6i64).map(move |z| (x, y, z))))
            .filter(|(x, y, z)| (x * 5 + y * 3 + z) % 4 == 0)
            .map(|(x, y, z)| (vec![x, y, z], vec![x * 100 + y * 10 + z]))
            .collect();
        OlapArray::build(pool, dims, &[4, 4, 3], ChunkFormat::ChunkOffset, cells, 1).unwrap()
    }

    #[test]
    fn every_slice_matches_direct_consolidation() {
        let adt = build();
        let query = Query::new(vec![
            DimGrouping::Level(0),
            DimGrouping::Level(0),
            DimGrouping::Key,
        ]);
        let slices = compute_cube(&adt, &query).unwrap();
        assert_eq!(slices.len(), 8);

        for slice in &slices {
            // Rebuild the equivalent single group-by query.
            let mut group_by = Vec::new();
            let mut gi = 0;
            for g in &query.group_by {
                group_by.push(if matches!(g, DimGrouping::Drop) {
                    DimGrouping::Drop
                } else {
                    let active = slice.mask[gi];
                    gi += 1;
                    if active {
                        *g
                    } else {
                        DimGrouping::Drop
                    }
                });
            }
            let direct = adt.consolidate(&Query::new(group_by)).unwrap();
            assert_eq!(slice.result, direct, "mask {:?}", slice.mask);
        }
    }

    #[test]
    fn finest_first_and_global_last() {
        let adt = build();
        let query = Query::new(vec![
            DimGrouping::Level(0),
            DimGrouping::Level(0),
            DimGrouping::Drop,
        ]);
        let slices = compute_cube(&adt, &query).unwrap();
        assert_eq!(slices.len(), 4);
        assert_eq!(slices[0].mask, vec![true, true]);
        assert_eq!(slices[3].mask, vec![false, false]);
        // Global aggregate = one row with the total.
        assert_eq!(slices[3].result.rows().len(), 1);
        assert_eq!(
            slices[3].result.total(),
            adt.consolidate(&Query::new(vec![
                DimGrouping::Drop,
                DimGrouping::Drop,
                DimGrouping::Drop
            ]))
            .unwrap()
            .total()
        );
    }

    #[test]
    fn selections_rejected() {
        let adt = build();
        let q = Query::new(vec![
            DimGrouping::Level(0),
            DimGrouping::Drop,
            DimGrouping::Drop,
        ])
        .with_selection(0, Selection::eq(AttrRef::Level(0), 1));
        assert!(compute_cube(&adt, &q).is_err());
    }

    #[test]
    fn no_grouped_dims_yields_single_global_slice() {
        let adt = build();
        let q = Query::new(vec![DimGrouping::Drop; 3]);
        let slices = compute_cube(&adt, &q).unwrap();
        assert_eq!(slices.len(), 1);
        assert!(slices[0].mask.is_empty());
        assert_eq!(slices[0].result.rows().len(), 1);
    }
}
