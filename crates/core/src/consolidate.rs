//! The OLAP Array consolidation algorithm (§4.1).
//!
//! Phase 1 scans the dimension tables, probes the key B-trees, loads
//! the IndexToIndex arrays, and builds the result object's B-trees.
//! Phase 2 scans the input array once; each valid cell's indices are
//! mapped through the IndexToIndex arrays to the result cell, and the
//! measure is aggregated there — star join and aggregation fused into
//! one position-based pass.

use molap_btree::BTree;

use crate::adt::OlapArray;
use crate::error::{Error, Result};
use crate::query::{DimGrouping, Query};
use crate::result::{ConsolidationResult, GroupedDim, ResultCube};

/// Whether phase 1 should construct the result object's B-trees.
///
/// The §4.1 algorithm builds them so the result ADT supports further
/// value-based lookups — but a query that only produces rows (the SQL
/// path, parallel workers, partitioned bands) discards them unread, and
/// the dimension-table scan + B-tree inserts are pure overhead there.
/// Materialization passes `Yes`; hot row-producing paths pass `No`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BuildResultBtrees {
    /// Construct result B-trees (result will become an ADT).
    Yes,
    /// Skip them (result is consumed as rows).
    No,
}

/// Phase-1 output for one grouped dimension.
pub(crate) struct GroupMap {
    /// Source dimension index.
    pub dim: usize,
    /// Array index → group rank.
    pub i2i: Vec<u32>,
    /// Rank → group code (ascending).
    pub codes: Vec<i64>,
    /// Result column header.
    pub column: String,
}

/// Phase 1 (§4.1): for each grouped dimension, load its IndexToIndex
/// array, and build the result OLAP object's B-tree by scanning the
/// dimension table and probing the key B-tree for each row.
///
/// With [`BuildResultBtrees::Yes`], the result B-trees are genuinely
/// constructed (the dimension scans, key-B-tree probes, and B-tree
/// inserts are real work, as in the paper) and returned so callers may
/// hang them off a result ADT. They are built on an ephemeral in-memory
/// pool: allocating them on the input's pool would grow the database
/// file on every query, and the paper's result object is transient
/// unless explicitly materialized. With [`BuildResultBtrees::No`] that
/// whole phase-1 step is skipped and the returned vec is empty.
pub(crate) fn phase1(
    adt: &OlapArray,
    query: &Query,
    build: BuildResultBtrees,
) -> Result<(Vec<GroupMap>, Vec<BTree>)> {
    use molap_storage::{BufferPool, MemDisk};
    use std::sync::Arc;
    let result_pool = match build {
        BuildResultBtrees::Yes => Some(Arc::new(BufferPool::with_bytes(
            Arc::new(MemDisk::new()),
            4 << 20,
        ))),
        BuildResultBtrees::No => None,
    };
    let mut maps = Vec::new();
    let mut result_btrees = Vec::new();
    for (d, grouping) in query.group_by.iter().enumerate() {
        let dim = &adt.dims()[d];
        let (i2i, codes, column) = match grouping {
            DimGrouping::Drop => continue,
            DimGrouping::Key => {
                let (i2i, codes) = adt.key_i2i(d);
                (i2i, codes, format!("{}.key", dim.name()))
            }
            DimGrouping::Level(l) => {
                let i2i = adt.load_i2i(d, *l)?;
                let codes = adt.dim_indexes(d).level_codes[*l].clone();
                let name = dim.level_name(*l).unwrap_or("?");
                (i2i, codes, format!("{}.{}", dim.name(), name))
            }
        };
        // Build the result B-tree: scan the dimension table, probe the
        // key B-tree for each tuple's array index, insert its group
        // value with the group's result index.
        if let Some(result_pool) = &result_pool {
            let mut result_btree = BTree::create(result_pool.clone())?;
            let key_btree = &adt.dim_indexes(d).key_btree;
            // Loop-invariant: the grouping dispatch and the code-column
            // borrow are the same for every key — hoist them so the
            // per-key loop is probe → remap → insert.
            let key_grouped = matches!(grouping, DimGrouping::Key);
            let codes = codes.as_slice();
            for &key in dim.keys() {
                let idx = key_btree.get(key)?.ok_or_else(|| {
                    Error::Internal(format!("dimension key {key} missing from its key B-tree"))
                })?;
                let rank = i2i[idx as usize];
                let code = if key_grouped {
                    key
                } else {
                    codes[rank as usize]
                };
                result_btree.insert(code, rank as u64)?;
            }
            result_btrees.push(result_btree);
        }
        maps.push(GroupMap {
            dim: d,
            i2i,
            codes,
            column,
        });
    }
    Ok((maps, result_btrees))
}

/// Builds the empty result cube for a set of group maps.
pub(crate) fn make_cube(maps: &[GroupMap], n_measures: usize) -> ResultCube {
    let dims = maps
        .iter()
        .map(|m| GroupedDim {
            dim: m.dim,
            column: m.column.clone(),
            codes: m.codes.clone(),
        })
        .collect();
    ResultCube::new(dims, n_measures)
}

/// Prefetch-pipeline consumer for the §4.1 full scan: drains decoded
/// chunks from `pipe` (shared with any number of peer consumers) and
/// aggregates each through a per-chunk [`ChunkKernel`]. On a delivered
/// error the pipeline is shut down and the error propagated.
pub(crate) fn full_scan_consumer(
    adt: &OlapArray,
    maps: &[GroupMap],
    pipe: &molap_array::ChunkPipeline,
) -> Result<ResultCube> {
    use crate::kernel::ChunkKernel;
    use molap_array::diffseq::DiffSeqCursor;
    use molap_array::ChunkPayload;
    let mut cube = make_cube(maps, adt.n_measures());
    let shape = adt.array().shape();
    let limit = shape.chunk_cells() as u32;
    while let Some(item) = pipe.next_payload() {
        let (chunk_no, payload) = match item {
            Ok(delivered) => delivered,
            Err(e) => {
                pipe.shutdown();
                return Err(e.into());
            }
        };
        match payload {
            ChunkPayload::Chunk(chunk) => {
                if chunk.valid_cells() == 0 {
                    continue;
                }
                let kernel = ChunkKernel::new(shape, maps, &cube, chunk_no, None);
                kernel.apply(&chunk, &mut cube);
            }
            // The streaming path: raw diff-seq bytes go gap-unpack →
            // prefix-sum → kernel remap, never materializing a Chunk.
            ChunkPayload::DiffSeq(bytes) => {
                let mut cursor = match DiffSeqCursor::new(&bytes, limit) {
                    Ok(c) => c,
                    Err(e) => {
                        pipe.shutdown();
                        return Err(e.into());
                    }
                };
                if cursor.is_empty() {
                    continue;
                }
                let p = cursor.n_measures();
                let kernel = ChunkKernel::new(shape, maps, &cube, chunk_no, None);
                loop {
                    match cursor.next_batch() {
                        Ok(Some((offsets, values))) => {
                            kernel.apply_batch(offsets, values, p, &mut cube);
                        }
                        Ok(None) => break,
                        Err(e) => {
                            pipe.shutdown();
                            return Err(e.into());
                        }
                    }
                }
            }
        }
    }
    Ok(cube)
}

/// The §4.1 algorithm: full consolidation, no selections.
pub(crate) fn consolidate_full(adt: &OlapArray, query: &Query) -> Result<ConsolidationResult> {
    let (_, cube) = consolidate_full_cube(adt, query, BuildResultBtrees::No)?;
    cube.into_result(&query.aggs)
}

/// §4.1 core returning the positional result cube (used by the
/// row-producing wrapper and by result materialization).
pub(crate) fn consolidate_full_cube(
    adt: &OlapArray,
    query: &Query,
    build: BuildResultBtrees,
) -> Result<(Vec<GroupMap>, ResultCube)> {
    let (maps, _result_btrees) = phase1(adt, query, build)?;
    let mut cube = make_cube(&maps, adt.n_measures());

    // Phase 2: one scan of the input array; position-based aggregation.
    let mut ranks = vec![0u32; maps.len()];
    adt.array().for_each_cell(|coords, values| {
        for (g, map) in maps.iter().enumerate() {
            ranks[g] = map.i2i[coords[map.dim] as usize];
        }
        cube.add(&ranks, values);
    })?;

    Ok((maps, cube))
}

/// Memory-bounded consolidation — the extension §4.1 sketches for
/// results too large for memory: "our algorithm would need to be
/// extended to compute the result OLAP object chunk by chunk, where
/// each chunk fits in memory".
///
/// The result space is partitioned into bands along the first grouped
/// dimension so that each band's dense cube holds at most
/// `max_result_cells` cells (best effort: a single rank's band may
/// exceed the bound if the remaining dimensions alone do). The input
/// array is scanned once per band; rows are emitted band by band.
/// Results are identical to [`consolidate_full`].
pub(crate) fn consolidate_partitioned(
    adt: &OlapArray,
    query: &Query,
    max_result_cells: usize,
) -> Result<ConsolidationResult> {
    let (maps, _result_btrees) = phase1(adt, query, BuildResultBtrees::No)?;
    if maps.is_empty() {
        // Global aggregate: nothing to partition.
        let mut cube = make_cube(&maps, adt.n_measures());
        adt.array()
            .for_each_cell(|_, values| cube.add(&[], values))?;
        return cube.into_result(&query.aggs);
    }

    let first_card = maps[0].codes.len();
    let rest: usize = maps[1..].iter().map(|m| m.codes.len()).product();
    let band_width = (max_result_cells / rest.max(1)).clamp(1, first_card);

    let columns: Vec<String> = maps.iter().map(|m| m.column.clone()).collect();
    let mut rows: Vec<crate::result::Row> = Vec::new();
    let mut band_start = 0usize;
    let mut ranks = vec![0u32; maps.len()];
    while band_start < first_card {
        let band_end = (band_start + band_width).min(first_card);
        let band_dims: Vec<crate::result::GroupedDim> = maps
            .iter()
            .enumerate()
            .map(|(i, m)| crate::result::GroupedDim {
                dim: m.dim,
                column: m.column.clone(),
                codes: if i == 0 {
                    m.codes[band_start..band_end].to_vec()
                } else {
                    m.codes.clone()
                },
            })
            .collect();
        let mut cube = crate::result::ResultCube::new(band_dims, adt.n_measures());
        adt.array().for_each_cell(|coords, values| {
            let first_rank = maps[0].i2i[coords[maps[0].dim] as usize] as usize;
            if first_rank < band_start || first_rank >= band_end {
                return;
            }
            ranks[0] = (first_rank - band_start) as u32;
            for (g, map) in maps.iter().enumerate().skip(1) {
                ranks[g] = map.i2i[coords[map.dim] as usize];
            }
            cube.add(&ranks, values);
        })?;
        rows.extend(cube.into_result(&query.aggs)?.rows().iter().cloned());
        band_start = band_end;
    }
    Ok(ConsolidationResult::from_rows(columns, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggFunc, AggValue};
    use crate::dimension::DimensionTable;
    use crate::query::Query;
    use crate::result::Row;
    use molap_array::ChunkFormat;
    use molap_storage::{BufferPool, MemDisk};
    use std::sync::Arc;

    fn build() -> OlapArray {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 2048));
        let dims = vec![
            DimensionTable::build(
                "store",
                &[0, 1, 2, 3],
                vec![("city", vec![10, 10, 11, 12]), ("region", vec![5, 5, 5, 6])],
            )
            .unwrap(),
            DimensionTable::build("product", &[0, 1, 2], vec![("type", vec![7, 8, 7])]).unwrap(),
        ];
        let cells = vec![
            (vec![0, 0], vec![1]),
            (vec![0, 1], vec![2]),
            (vec![1, 0], vec![4]),
            (vec![2, 2], vec![8]),
            (vec![3, 1], vec![16]),
            (vec![3, 2], vec![32]),
        ];
        OlapArray::build(pool, dims, &[2, 2], ChunkFormat::ChunkOffset, cells, 1).unwrap()
    }

    #[test]
    fn group_by_one_level() {
        let adt = build();
        // SELECT region, SUM(v) GROUP BY region.
        let q = Query::new(vec![DimGrouping::Level(1), DimGrouping::Drop]);
        let res = adt.consolidate(&q).unwrap();
        assert_eq!(res.columns(), &["store.region".to_string()]);
        assert_eq!(
            res.rows(),
            &[
                Row {
                    keys: vec![5],
                    values: vec![AggValue::Int(1 + 2 + 4 + 8)]
                },
                Row {
                    keys: vec![6],
                    values: vec![AggValue::Int(16 + 32)]
                },
            ]
        );
    }

    #[test]
    fn group_by_two_dimensions() {
        let adt = build();
        let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Level(0)]);
        let res = adt.consolidate(&q).unwrap();
        assert_eq!(
            res.columns(),
            &["store.city".to_string(), "product.type".to_string()]
        );
        // city 10: cells (0,0)=1 t7, (0,1)=2 t8, (1,0)=4 t7
        // city 11: (2,2)=8 t7 ; city 12: (3,1)=16 t8, (3,2)=32 t7
        assert_eq!(
            res.rows(),
            &[
                Row {
                    keys: vec![10, 7],
                    values: vec![AggValue::Int(5)]
                },
                Row {
                    keys: vec![10, 8],
                    values: vec![AggValue::Int(2)]
                },
                Row {
                    keys: vec![11, 7],
                    values: vec![AggValue::Int(8)]
                },
                Row {
                    keys: vec![12, 7],
                    values: vec![AggValue::Int(32)]
                },
                Row {
                    keys: vec![12, 8],
                    values: vec![AggValue::Int(16)]
                },
            ]
        );
    }

    #[test]
    fn global_aggregate_when_all_dropped() {
        let adt = build();
        let q = Query::new(vec![DimGrouping::Drop, DimGrouping::Drop]);
        let res = adt.consolidate(&q).unwrap();
        assert_eq!(res.rows().len(), 1);
        assert_eq!(res.rows()[0].keys, Vec::<i64>::new());
        assert_eq!(res.rows()[0].values, vec![AggValue::Int(63)]);
    }

    #[test]
    fn group_by_key_is_finest() {
        let adt = build();
        let q = Query::new(vec![DimGrouping::Key, DimGrouping::Drop]);
        let res = adt.consolidate(&q).unwrap();
        assert_eq!(res.columns(), &["store.key".to_string()]);
        assert_eq!(
            res.rows()
                .iter()
                .map(|r| (r.keys[0], r.values[0]))
                .collect::<Vec<_>>(),
            vec![
                (0, AggValue::Int(3)),
                (1, AggValue::Int(4)),
                (2, AggValue::Int(8)),
                (3, AggValue::Int(48)),
            ]
        );
    }

    #[test]
    fn non_sum_aggregates() {
        let adt = build();
        let q = Query::new(vec![DimGrouping::Level(1), DimGrouping::Drop])
            .with_aggs(vec![AggFunc::Max]);
        let res = adt.consolidate(&q).unwrap();
        assert_eq!(
            res.rows().iter().map(|r| r.values[0]).collect::<Vec<_>>(),
            vec![AggValue::Int(8), AggValue::Int(32)]
        );
        let q = Query::new(vec![DimGrouping::Level(1), DimGrouping::Drop])
            .with_aggs(vec![AggFunc::Avg]);
        let res = adt.consolidate(&q).unwrap();
        assert_eq!(
            res.rows()[0].values[0],
            AggValue::Ratio { sum: 15, count: 4 }
        );
    }

    #[test]
    fn phase1_builds_result_btrees() {
        let adt = build();
        let q = Query::new(vec![DimGrouping::Level(1), DimGrouping::Level(0)]);
        let (maps, btrees) = phase1(&adt, &q, BuildResultBtrees::Yes).unwrap();
        assert_eq!(maps.len(), 2);
        assert_eq!(btrees.len(), 2);
        // store.region result B-tree: one entry per dimension row.
        assert_eq!(btrees[0].len(), 4);
        // Probing a group value yields its result index (rank).
        assert_eq!(btrees[0].get(5).unwrap(), Some(0));
        assert_eq!(btrees[0].get(6).unwrap(), Some(1));
        assert_eq!(btrees[1].get(7).unwrap(), Some(0));
    }

    #[test]
    fn phase1_can_skip_result_btrees() {
        let adt = build();
        let q = Query::new(vec![DimGrouping::Level(1), DimGrouping::Level(0)]);
        let (maps, btrees) = phase1(&adt, &q, BuildResultBtrees::No).unwrap();
        assert_eq!(maps.len(), 2, "group maps are unaffected by the opt-out");
        assert!(btrees.is_empty());
    }

    #[test]
    fn partitioned_matches_full_at_every_budget() {
        let adt = build();
        for group_by in [
            vec![DimGrouping::Level(0), DimGrouping::Level(0)],
            vec![DimGrouping::Key, DimGrouping::Level(0)],
            vec![DimGrouping::Drop, DimGrouping::Level(0)],
            vec![DimGrouping::Drop, DimGrouping::Drop],
        ] {
            let q = Query::new(group_by);
            let full = consolidate_full(&adt, &q).unwrap();
            for budget in [1usize, 2, 3, 7, 100, 100_000] {
                let part = consolidate_partitioned(&adt, &q, budget).unwrap();
                assert_eq!(part, full, "budget {budget}, {q:?}");
            }
        }
    }

    #[test]
    fn invalid_queries_rejected() {
        let adt = build();
        assert!(adt
            .consolidate(&Query::new(vec![DimGrouping::Drop]))
            .is_err());
        assert!(adt
            .consolidate(&Query::new(vec![DimGrouping::Level(9), DimGrouping::Drop]))
            .is_err());
    }
}
