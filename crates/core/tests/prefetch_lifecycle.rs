//! Prefetch-pipeline lifecycle tests: error propagation from a failing
//! disk, and `BufferPool::clear`'s epoch bump racing in-flight
//! prefetches. Companion to the in-crate oracle tests and the storage
//! crate's `slow_disk.rs` harness.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use molap_array::ChunkFormat;
use molap_core::{
    consolidate_pipelined, DimGrouping, DimensionTable, OlapArray, PrefetchPlan, Query,
};
use molap_storage::{BufferPool, DiskManager, MemDisk, PageBuf, PageId, StorageError};

/// A MemDisk whose reads fail while `armed` — the prefetch analogue of
/// the storage crate's SlowDisk harness. Writes always succeed so the
/// fixture can be built before the fault is injected.
struct FailingDisk {
    inner: MemDisk,
    armed: AtomicBool,
    reads: AtomicU64,
}

impl FailingDisk {
    fn new() -> Self {
        FailingDisk {
            inner: MemDisk::new(),
            armed: AtomicBool::new(false),
            reads: AtomicU64::new(0),
        }
    }
}

impl DiskManager for FailingDisk {
    fn read_page(&self, pid: PageId, buf: &mut PageBuf) -> molap_storage::Result<()> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        if self.armed.load(Ordering::Relaxed) {
            return Err(StorageError::Io(io::Error::other("injected read fault")));
        }
        self.inner.read_page(pid, buf)
    }

    fn write_page(&self, pid: PageId, buf: &PageBuf) -> molap_storage::Result<()> {
        self.inner.write_page(pid, buf)
    }

    fn allocate_contiguous(&self, n: u64) -> molap_storage::Result<PageId> {
        self.inner.allocate_contiguous(n)
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn sync(&self) -> molap_storage::Result<()> {
        self.inner.sync()
    }
}

fn build_adt(pool: Arc<BufferPool>, format: ChunkFormat) -> OlapArray {
    let dims = vec![
        DimensionTable::build(
            "a",
            &(0..30i64).collect::<Vec<_>>(),
            vec![("h", (0..30i64).map(|k| k / 10).collect())],
        )
        .unwrap(),
        DimensionTable::build(
            "b",
            &(0..20i64).collect::<Vec<_>>(),
            vec![("h", (0..20i64).map(|k| k % 4).collect())],
        )
        .unwrap(),
    ];
    let cells: Vec<(Vec<i64>, Vec<i64>)> = (0..30i64)
        .flat_map(|x| (0..20i64).map(move |y| (vec![x, y], vec![x * 31 + y])))
        .filter(|(k, _)| (k[0] * 13 + k[1] * 7) % 3 != 0)
        .collect();
    OlapArray::build(pool, dims, &[7, 6], format, cells, 1).unwrap()
}

#[test]
fn failing_disk_errors_propagate_and_the_pipeline_recovers() {
    let disk = Arc::new(FailingDisk::new());
    let pool = Arc::new(BufferPool::new(disk.clone(), 1024));
    let adt = build_adt(pool.clone(), ChunkFormat::ChunkOffset);
    let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Level(0)]);
    let expect = adt.consolidate(&q).unwrap();

    // Cold + armed: every prefetcher read fails; the error must come
    // back (not hang, not panic) from every worker/plan combination.
    for (workers, plan) in [
        (1, PrefetchPlan::new(1, 1)),
        (2, PrefetchPlan::new(2, 4)),
        (4, PrefetchPlan::new(2, 8)),
    ] {
        pool.clear().unwrap();
        disk.armed.store(true, Ordering::Relaxed);
        let err = consolidate_pipelined(&adt, &q, workers, plan);
        assert!(
            err.is_err(),
            "injected fault must surface ({workers} workers)"
        );

        // Disarmed, the same pipeline runs to the correct answer: the
        // failure left no poisoned queue or stuck producer behind.
        disk.armed.store(false, Ordering::Relaxed);
        let got = consolidate_pipelined(&adt, &q, workers, plan).unwrap();
        assert_eq!(got, expect);
    }
}

#[test]
fn pool_clear_epoch_races_in_flight_prefetch() {
    let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 1024));
    let adt = build_adt(pool.clone(), ChunkFormat::DenseLzw);
    let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop]);
    let expect = adt.consolidate(&q).unwrap();
    let epoch_before = pool.epoch();

    let done = AtomicBool::new(false);
    let cleared = AtomicU64::new(0);
    std::thread::scope(|s| {
        // Clear storm: bump the epoch while prefetches are in flight.
        // Clearing fails with PoolExhausted while query pages are
        // pinned — retry until some clears land mid-query.
        s.spawn(|| {
            while !done.load(Ordering::Relaxed) {
                if pool.clear().is_ok() {
                    cleared.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::yield_now();
            }
        });
        for _ in 0..25 {
            let got = consolidate_pipelined(&adt, &q, 2, PrefetchPlan::new(2, 4)).unwrap();
            assert_eq!(
                got, expect,
                "clear racing a pipelined query changed results"
            );
        }
        done.store(true, Ordering::Relaxed);
    });

    assert!(cleared.load(Ordering::Relaxed) > 0, "no clear ever landed");
    assert!(pool.epoch() > epoch_before, "clear must bump the epoch");
    // Stale-epoch cache entries inserted by racing prefetchers must not
    // serve a post-clear read; correctness was asserted above, so this
    // is just the final sanity check that the engine still answers.
    assert_eq!(adt.consolidate(&q).unwrap(), expect);
}
