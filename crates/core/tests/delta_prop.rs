//! Property test for write-time delta maintenance of cached result
//! cubes: after any batch of cell writes, a query answered from a
//! patched cached cube must be bit-identical to recomputing from
//! scratch — across SUM/COUNT/AVG/MIN/MAX, with and without
//! selections, including the MIN/MAX shrinking-extreme path where the
//! cache entry is dropped and the answer recomputed.

use std::sync::Arc;

use molap_array::ChunkFormat;
use molap_core::{
    apply_batch, consolidate_auto, AggFunc, AttrRef, DimGrouping, DimensionTable, OlapArray, Query,
    Selection, WriteBatch,
};
use molap_storage::{BufferPool, MemDisk};
use proptest::prelude::*;

/// One random cube, a query shape, and two successive write batches
/// (the second patches cubes the first already patched).
#[derive(Debug, Clone)]
struct Case {
    /// Per-dimension: (key count, level-0 block).
    dims: Vec<(i64, i64)>,
    chunk: Vec<u32>,
    format: ChunkFormat,
    group: Vec<DimGrouping>,
    /// Level-0 code for the selection variant of every query.
    sel_value: i64,
    writes: Vec<(Vec<i64>, i64)>,
    writes2: Vec<(Vec<i64>, i64)>,
    seed: u64,
}

/// Deterministic cell hash: drives both validity and measure values.
fn cell_hash(seed: u64, keys: &[i64]) -> i64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &k in keys {
        h = (h ^ k as u64).wrapping_mul(0x0100_0000_01B3);
        h ^= h >> 29;
    }
    (h >> 16) as i64 % 997 - 400
}

fn build_adt(case: &Case) -> OlapArray {
    let dims: Vec<DimensionTable> = case
        .dims
        .iter()
        .enumerate()
        .map(|(d, &(n, b))| {
            let keys: Vec<i64> = (0..n).collect();
            let l0: Vec<i64> = keys.iter().map(|k| k / b).collect();
            DimensionTable::build(&format!("dim{d}"), &keys, vec![("h1", l0)]).unwrap()
        })
        .collect();
    let sizes: Vec<i64> = case.dims.iter().map(|&(n, _)| n).collect();
    let mut cells: Vec<(Vec<i64>, Vec<i64>)> = Vec::new();
    let mut coords = vec![0i64; sizes.len()];
    loop {
        let h = cell_hash(case.seed, &coords);
        if h.rem_euclid(4) != 0 {
            cells.push((coords.clone(), vec![h]));
        }
        let mut d = sizes.len();
        let mut done = true;
        while d > 0 {
            d -= 1;
            if coords[d] + 1 < sizes[d] {
                coords[d] += 1;
                coords.iter_mut().skip(d + 1).for_each(|c| *c = 0);
                done = false;
                break;
            }
        }
        if done {
            break;
        }
    }
    let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 2048));
    OlapArray::build(pool, dims, &case.chunk, case.format, cells, 1).unwrap()
}

/// (size, level block, chunk, grouping selector) per dimension.
type DimSpec = (i64, i64, u32, u8);
type RawWrite = (Vec<u64>, i64);

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        proptest::collection::vec((4i64..12, 2i64..4, 1u32..5, 0u8..3), 2..4),
        0u8..2,
        proptest::collection::vec((proptest::collection::vec(0u64..64, 3), -400i64..400), 1..8),
        proptest::collection::vec((proptest::collection::vec(0u64..64, 3), -400i64..400), 1..8),
        any::<u64>(),
        0i64..8,
    )
        .prop_map(
            |(dims, fmt, w1, w2, seed, sel_raw): (
                Vec<DimSpec>,
                u8,
                Vec<RawWrite>,
                Vec<RawWrite>,
                u64,
                i64,
            )| {
                let format = if fmt == 0 {
                    ChunkFormat::ChunkOffset
                } else {
                    ChunkFormat::Dense
                };
                let mut spec = Vec::new();
                let mut chunk = Vec::new();
                let mut group = Vec::new();
                for &(n, b, ch, g) in &dims {
                    spec.push((n, b));
                    chunk.push(ch.min(n as u32));
                    group.push(match g {
                        0 => DimGrouping::Key,
                        1 => DimGrouping::Level(0),
                        _ => DimGrouping::Drop,
                    });
                }
                let sel_value = sel_raw % (spec[0].0 / spec[0].1 + 1);
                let map_writes = |w: Vec<RawWrite>| -> Vec<(Vec<i64>, i64)> {
                    w.into_iter()
                        .map(|(raw, v)| {
                            let keys: Vec<i64> = spec
                                .iter()
                                .enumerate()
                                .map(|(d, &(n, _))| (raw[d] % n as u64) as i64)
                                .collect();
                            (keys, v)
                        })
                        .collect()
                };
                let writes = map_writes(w1);
                let writes2 = map_writes(w2);
                Case {
                    dims: spec,
                    chunk,
                    format,
                    group,
                    sel_value,
                    writes,
                    writes2,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Warm the cache under every aggregate (with and without a
    /// selection), commit two successive random batches, and require
    /// every post-write answer — patched cube or recompute fallback —
    /// to be bit-identical to the sequential, uncached oracle.
    #[test]
    fn delta_maintained_cubes_match_scratch_recompute(case in case_strategy()) {
        let mut adt = build_adt(&case);
        let aggs = [AggFunc::Sum, AggFunc::Count, AggFunc::Avg, AggFunc::Min, AggFunc::Max];
        let queries: Vec<Query> = aggs
            .iter()
            .flat_map(|&agg| {
                let base = Query::new(case.group.clone()).with_aggs(vec![agg]);
                let mut selected = base.clone();
                selected.selections[0] =
                    vec![Selection::eq(AttrRef::Level(0), case.sel_value)];
                [base, selected]
            })
            .collect();
        for q in &queries {
            let got = consolidate_auto(&adt, q).unwrap();
            prop_assert_eq!(&got, &adt.consolidate(q).unwrap(), "warm-up diverged: {:?}", q);
        }
        for rows in [&case.writes, &case.writes2] {
            let mut batch = WriteBatch::new();
            for (keys, v) in rows {
                batch.set(keys, &[*v]);
            }
            apply_batch(&mut adt, &batch).unwrap();
            for q in &queries {
                let cached = consolidate_auto(&adt, q).unwrap();
                let scratch = adt.consolidate(q).unwrap();
                prop_assert_eq!(&cached, &scratch,
                    "delta-maintained answer diverged after {:?}: {:?}", rows, q);
            }
        }
        // The write path kept its books: every batch and cell counted.
        let s = adt.pool().stats().snapshot();
        prop_assert_eq!(s.write_batches, 2);
        prop_assert!(s.write_cells >= 2, "two non-empty batches committed");
    }
}
