//! Multi-threaded stress over one shared [`Database`]: concurrent full,
//! selection, parallel, and SQL consolidations must all return the
//! sequential answers while racing on the sharded buffer pool and the
//! shared decoded-chunk cache.
//!
//! Run with `--features lock-order-tracking` to additionally have the
//! vendored `parking_lot` panic on any lock acquisition that inverts
//! the declared order (the runtime counterpart of molap-lint's static
//! `lock-order` rule).

use std::sync::Arc;

use molap_array::ChunkFormat;
use molap_core::{
    consolidate_auto, consolidate_parallel, AttrRef, ConsolidationResult, Database, DimGrouping,
    DimensionTable, OlapArray, Query, Selection,
};

const THREADS: usize = 8;
const ROUNDS: usize = 12;

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("molap-stress-{}-{tag}.db", std::process::id()))
}

fn build_sales(db: &Database) -> OlapArray {
    let dims = vec![
        DimensionTable::build(
            "store",
            &(0..30i64).collect::<Vec<_>>(),
            vec![("region", (0..30i64).map(|k| k / 10).collect())],
        )
        .unwrap(),
        DimensionTable::build(
            "product",
            &(0..20i64).collect::<Vec<_>>(),
            vec![("ptype", (0..20i64).map(|k| k % 4).collect())],
        )
        .unwrap(),
    ];
    let cells: Vec<(Vec<i64>, Vec<i64>)> = (0..30i64)
        .flat_map(|x| (0..20i64).map(move |y| (vec![x, y], vec![x * 31 + y])))
        .filter(|(k, _)| (k[0] * 13 + k[1] * 7) % 3 != 0)
        .collect();
    OlapArray::build(
        db.pool().clone(),
        dims,
        &[7, 6],
        ChunkFormat::ChunkOffset,
        cells,
        1,
    )
    .unwrap()
}

#[test]
fn mixed_concurrent_consolidations_match_sequential() {
    let path = temp_path("mixed");
    let db = Arc::new(Database::create(&path, 1 << 20).unwrap());
    let adt = build_sales(&db);
    db.save_olap_array("sales", &adt).unwrap();
    db.checkpoint().unwrap();

    // The query mix, with sequential oracle answers computed up front.
    let full = Query::new(vec![DimGrouping::Level(0), DimGrouping::Level(0)]);
    let keyed = Query::new(vec![DimGrouping::Key, DimGrouping::Drop]);
    let selected = Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop])
        .with_selection(0, Selection::in_list(AttrRef::Level(0), vec![0, 2]))
        .with_selection(1, Selection::eq(AttrRef::Level(0), 1));
    let queries: Vec<(Query, ConsolidationResult)> = [full, keyed, selected]
        .into_iter()
        .map(|q| {
            let expect = adt.consolidate(&q).unwrap();
            (q, expect)
        })
        .collect();
    let queries = Arc::new(queries);
    let sql = "SELECT SUM(volume), store.region FROM sales GROUP BY store.region";
    let sql_expect = db.sql(sql, &["volume"]).unwrap();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = db.clone();
            let queries = queries.clone();
            let sql_expect = sql_expect.clone();
            std::thread::spawn(move || {
                // Each thread reopens the ADT, as a session would.
                let adt = db.open_olap_array("sales").unwrap();
                for i in 0..ROUNDS {
                    let (q, expect) = &queries[(t + i) % queries.len()];
                    let got = match i % 4 {
                        0 => adt.consolidate(q).unwrap(),
                        1 => consolidate_parallel(&adt, q, 1 + (t + i) % 4).unwrap(),
                        2 => consolidate_auto(&adt, q).unwrap(),
                        _ => {
                            assert_eq!(db.sql(sql, &["volume"]).unwrap(), sql_expect);
                            continue;
                        }
                    };
                    assert_eq!(&got, expect, "thread {t} round {i} diverged on {q:?}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Counter consistency across all the racing: every chunk-cache
    // lookup is exactly one hit or one miss, and the workload was hot
    // enough that the cache did real work.
    let s = db.pool().stats().snapshot();
    assert_eq!(
        s.chunk_cache_lookups(),
        s.chunk_cache_hits + s.chunk_cache_misses
    );
    assert!(s.chunk_cache_hits > 0, "hot reruns must hit the cache");
    assert!(s.chunk_cache_misses > 0, "cold first reads must miss");
    let shard_totals: u64 = db
        .pool()
        .shard_stats()
        .iter()
        .map(|sh| sh.hits + sh.misses)
        .sum();
    assert!(shard_totals > 0, "pool shards must have seen traffic");

    drop(db);
    let _ = std::fs::remove_file(&path);
    let mut wal = path.into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(wal);
}

/// A writer committing durable batches races pipelined and cached
/// readers. Every batch rewrites the array's first cell (chunk 0) and
/// last cell (the last chunk) together, so any reader that tears a
/// scan across a commit — mixing chunk 0 of one state with the last
/// chunk of another — produces a total outside the per-boundary set.
/// Under `--features lock-order-tracking` this also certifies the
/// whole write path (commit → catalog → generations → results →
/// versions → LOB → pool) against the declared lock order while
/// readers hold pool and cache locks concurrently.
#[test]
fn writer_vs_pipelined_readers_see_only_batch_boundaries() {
    use molap_core::{consolidate_pipelined, AggValue, PrefetchPlan, WriteBatch};
    use std::sync::Barrier;

    const BATCHES: i64 = 10;
    const READERS: usize = 4;
    const READS: usize = 25;

    let path = temp_path("writer");
    let db = Arc::new(Database::create(&path, 1 << 20).unwrap());
    let dims = vec![
        DimensionTable::build(
            "store",
            &(0..16i64).collect::<Vec<_>>(),
            vec![("region", (0..16i64).map(|k| k / 4).collect())],
        )
        .unwrap(),
        DimensionTable::build(
            "product",
            &(0..8i64).collect::<Vec<_>>(),
            vec![("ptype", (0..8i64).map(|k| k % 2).collect())],
        )
        .unwrap(),
    ];
    let cells: Vec<(Vec<i64>, Vec<i64>)> = (0..16i64)
        .flat_map(|x| (0..8i64).map(move |y| (vec![x, y], vec![x * 8 + y])))
        .collect();
    let base_sum: i64 = cells.iter().map(|(_, v)| v[0]).sum();
    let adt = OlapArray::build(
        db.pool().clone(),
        dims,
        &[4, 4],
        ChunkFormat::Dense,
        cells,
        1,
    )
    .unwrap();
    db.save_olap_array("wsales", &adt).unwrap();
    db.checkpoint().unwrap();

    // Total sums at every batch boundary: batch r sets cell [0,0]
    // (originally 0) to r*100_000 and cell [15,7] (originally 127) to
    // r*100_000 + 7.
    let valid: std::collections::HashSet<i64> = (0..=BATCHES)
        .map(|r| {
            if r == 0 {
                base_sum
            } else {
                base_sum - 127 + (r * 100_000) + (r * 100_000 + 7)
            }
        })
        .collect();

    let q = Query::new(vec![DimGrouping::Drop, DimGrouping::Drop]);
    let barrier = Arc::new(Barrier::new(READERS + 1));

    let writer = {
        let db = db.clone();
        let barrier = barrier.clone();
        std::thread::spawn(move || {
            barrier.wait();
            for r in 1..=BATCHES {
                let mut batch = WriteBatch::new();
                batch.set(&[0, 0], &[r * 100_000]);
                batch.set(&[15, 7], &[r * 100_000 + 7]);
                let receipt = db.write_batch("wsales", &batch).unwrap();
                assert_eq!(receipt.cells_written, 2);
            }
        })
    };
    let readers: Vec<_> = (0..READERS)
        .map(|t| {
            let db = db.clone();
            let q = q.clone();
            let valid = valid.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                // One handle for the whole run: in-place commits are
                // visible through it, bridged by pinned pre-images
                // while a scan is mid-flight.
                let adt = db.open_olap_array("wsales").unwrap();
                barrier.wait();
                for i in 0..READS {
                    let got = if t % 2 == 0 {
                        consolidate_pipelined(&adt, &q, 2, PrefetchPlan::new(2, 4)).unwrap()
                    } else {
                        consolidate_auto(&adt, &q).unwrap()
                    };
                    let sum = match got.rows()[0].values[0] {
                        AggValue::Int(v) => v,
                        ref other => panic!("unexpected aggregate {other:?}"),
                    };
                    assert!(
                        valid.contains(&sum),
                        "reader {t} round {i} tore a scan: total {sum} is not \
                         at any batch boundary"
                    );
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for h in readers {
        h.join().unwrap();
    }

    // Quiesced: a fresh handle must see exactly the final batch.
    let adt = db.open_olap_array("wsales").unwrap();
    let final_sum = match adt.consolidate(&q).unwrap().rows()[0].values[0] {
        AggValue::Int(v) => v,
        ref other => panic!("unexpected aggregate {other:?}"),
    };
    assert_eq!(
        final_sum,
        base_sum - 127 + BATCHES * 100_000 + BATCHES * 100_000 + 7
    );

    drop(db);
    let _ = std::fs::remove_file(&path);
    let mut wal = path.into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(wal);
}

/// The relocation variant of the writer-vs-readers race, over
/// [`ChunkFormat::ChunkOffset`]. Every batch *inserts* a previously
/// empty cell into chunk 0, so its encoded length grows and
/// `LobStore::overwrite` must relocate the chunk to a fresh extent —
/// the case where version pins keyed by storage location silently
/// stopped shielding anything (the pinned pre-image lived at the old
/// location while readers resolved the new one). With pins keyed by
/// logical chunk identity, readers reopening the array mid-batch must
/// still land on batch-boundary totals. The same batch also rewrites
/// the last cell in place, so each commit mixes a relocating and an
/// in-place overwrite.
#[test]
fn chunkoffset_relocating_writes_vs_reopening_readers() {
    use molap_core::{consolidate_pipelined, AggValue, PrefetchPlan, WriteBatch};
    use std::sync::Barrier;

    const BATCHES: i64 = 10;
    const READERS: usize = 4;
    const READS: usize = 20;

    // One fresh coordinate per batch, all inside chunk 0 (x, y < 4):
    // inserting it grows chunk 0's valid-cell count and forces the
    // overwrite to relocate.
    const INSERTS: [[i64; 2]; BATCHES as usize] = [
        [1, 1],
        [1, 2],
        [1, 3],
        [2, 1],
        [2, 2],
        [2, 3],
        [3, 1],
        [3, 2],
        [3, 3],
        [2, 0],
    ];

    let path = temp_path("reloc");
    let db = Arc::new(Database::create(&path, 1 << 20).unwrap());
    let dims = vec![
        DimensionTable::build(
            "store",
            &(0..16i64).collect::<Vec<_>>(),
            vec![("region", (0..16i64).map(|k| k / 4).collect())],
        )
        .unwrap(),
        DimensionTable::build(
            "product",
            &(0..8i64).collect::<Vec<_>>(),
            vec![("ptype", (0..8i64).map(|k| k % 2).collect())],
        )
        .unwrap(),
    ];
    // Start with every cell valid *except* the reserved insert slots.
    let cells: Vec<(Vec<i64>, Vec<i64>)> = (0..16i64)
        .flat_map(|x| (0..8i64).map(move |y| (vec![x, y], vec![x * 8 + y])))
        .filter(|(k, _)| !INSERTS.contains(&[k[0], k[1]]))
        .collect();
    let base_sum: i64 = cells.iter().map(|(_, v)| v[0]).sum();
    let adt = OlapArray::build(
        db.pool().clone(),
        dims,
        &[4, 4],
        ChunkFormat::ChunkOffset,
        cells,
        1,
    )
    .unwrap();
    db.save_olap_array("rsales", &adt).unwrap();
    db.checkpoint().unwrap();

    // Batch r sets [0,0] (originally 0) to r*100_000, [15,7]
    // (originally 127) to r*100_000 + 7, and inserts INSERTS[r-1]
    // with value r*1_000; boundary r carries all inserts up to r.
    let valid: std::collections::HashSet<i64> = (0..=BATCHES)
        .map(|r| {
            if r == 0 {
                base_sum
            } else {
                base_sum - 127 + 2 * r * 100_000 + 7 + 1_000 * r * (r + 1) / 2
            }
        })
        .collect();
    assert_eq!(valid.len(), BATCHES as usize + 1);

    let q = Query::new(vec![DimGrouping::Drop, DimGrouping::Drop]);
    let barrier = Arc::new(Barrier::new(READERS + 1));

    let writer = {
        let db = db.clone();
        let barrier = barrier.clone();
        std::thread::spawn(move || {
            barrier.wait();
            for r in 1..=BATCHES {
                let mut batch = WriteBatch::new();
                batch.set(&[0, 0], &[r * 100_000]);
                batch.set(&[15, 7], &[r * 100_000 + 7]);
                batch.set(&INSERTS[(r - 1) as usize], &[r * 1_000]);
                let receipt = db.write_batch("rsales", &batch).unwrap();
                assert_eq!(receipt.cells_written, 3);
            }
        })
    };
    let readers: Vec<_> = (0..READERS)
        .map(|t| {
            let db = db.clone();
            let q = q.clone();
            let valid = valid.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..READS {
                    // Reopen per read, as sessions do: a handle's chunk
                    // directory is frozen at open, so only a fresh open
                    // observes relocated chunks. An open that races a
                    // batch mid-commit picks up staged directory
                    // entries, and the snapshot-pinned scan below must
                    // resolve those chunks back to the pre-batch
                    // images via their logical version pins.
                    let adt = db.open_olap_array("rsales").unwrap();
                    let got = consolidate_pipelined(&adt, &q, 2, PrefetchPlan::new(2, 4)).unwrap();
                    let sum = match got.rows()[0].values[0] {
                        AggValue::Int(v) => v,
                        ref other => panic!("unexpected aggregate {other:?}"),
                    };
                    assert!(
                        valid.contains(&sum),
                        "reader {t} round {i} tore a scan: total {sum} is not \
                         at any batch boundary"
                    );
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for h in readers {
        h.join().unwrap();
    }

    // Quiesced: a fresh handle sees the final batch exactly.
    let adt = db.open_olap_array("rsales").unwrap();
    let final_sum = match adt.consolidate(&q).unwrap().rows()[0].values[0] {
        AggValue::Int(v) => v,
        ref other => panic!("unexpected aggregate {other:?}"),
    };
    assert_eq!(
        final_sum,
        base_sum - 127 + 2 * BATCHES * 100_000 + 7 + 1_000 * BATCHES * (BATCHES + 1) / 2
    );
    assert_eq!(adt.array().valid_cells(), 16 * 8);

    drop(db);
    let _ = std::fs::remove_file(&path);
    let mut wal = path.into_os_string();
    wal.push(".wal");
    let _ = std::fs::remove_file(wal);
}
