//! Property tests for the PR 10 selection planner: HBI-routed
//! selections must be bit-identical to the B-tree index path and to an
//! independent full-scan oracle over the generated cells, across all
//! five aggregates, all three chunk formats, and both §4.2 evaluation
//! directions (wide selections force the scan direction, narrow ones
//! the probe direction).

use std::collections::BTreeMap;
use std::sync::Arc;

use molap_array::ChunkFormat;
use molap_core::{
    AggFunc, AggValue, AttrRef, DimGrouping, DimensionTable, OlapArray, PlannerMode, Pred, Query,
    Row, Selection,
};
use molap_storage::{BufferPool, MemDisk};
use proptest::prelude::*;

const AGGS: [AggFunc; 5] = [
    AggFunc::Sum,
    AggFunc::Count,
    AggFunc::Min,
    AggFunc::Max,
    AggFunc::Avg,
];

/// One generated cube plus a selection query. `wide` selections route
/// to the HBI under `Auto` and (cross-product > valid cells) drive the
/// scan direction; narrow ones stay on the B-tree and probe.
#[derive(Debug, Clone)]
struct Case {
    /// Per-dimension: (key count, level-0 block).
    dims: Vec<(i64, i64)>,
    chunk: Vec<u32>,
    format: ChunkFormat,
    group_by: Vec<DimGrouping>,
    selections: Vec<Vec<Selection>>,
    seed: u64,
}

/// Deterministic cell hash: drives both validity and measure values.
fn cell_hash(seed: u64, keys: &[i64]) -> i64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &k in keys {
        h = (h ^ k as u64).wrapping_mul(0x0100_0000_01B3);
        h ^= h >> 29;
    }
    (h >> 16) as i64 % 997 - 400
}

fn build_cells(case: &Case) -> Vec<(Vec<i64>, Vec<i64>)> {
    let sizes: Vec<i64> = case.dims.iter().map(|&(n, _)| n).collect();
    let mut cells = Vec::new();
    let mut coords = vec![0i64; sizes.len()];
    loop {
        let h = cell_hash(case.seed, &coords);
        if h.rem_euclid(4) != 0 {
            cells.push((coords.clone(), vec![h]));
        }
        let mut d = sizes.len();
        let mut done = true;
        while d > 0 {
            d -= 1;
            if coords[d] + 1 < sizes[d] {
                coords[d] += 1;
                coords.iter_mut().skip(d + 1).for_each(|c| *c = 0);
                done = false;
                break;
            }
        }
        if done {
            break;
        }
    }
    cells
}

fn build_adt(case: &Case, cells: Vec<(Vec<i64>, Vec<i64>)>) -> OlapArray {
    let dims: Vec<DimensionTable> = case
        .dims
        .iter()
        .enumerate()
        .map(|(d, &(n, b0))| {
            let keys: Vec<i64> = (0..n).collect();
            let l0: Vec<i64> = keys.iter().map(|k| k / b0).collect();
            DimensionTable::build(&format!("dim{d}"), &keys, vec![("h", l0)]).unwrap()
        })
        .collect();
    let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 2048));
    OlapArray::build(pool, dims, &case.chunk, case.format, cells, 1).unwrap()
}

/// Applies the query's selections to one cell, dimension by dimension.
fn accepted(case: &Case, sels: &[Vec<Selection>], keys: &[i64]) -> bool {
    for (d, dim_sels) in sels.iter().enumerate() {
        let (_, b0) = case.dims[d];
        for sel in dim_sels {
            let v = match sel.attr {
                AttrRef::Key => keys[d],
                AttrRef::Level(_) => keys[d] / b0,
            };
            if !sel.pred.accepts(v) {
                return false;
            }
        }
    }
    true
}

/// The full-scan oracle: aggregate the generated cells directly,
/// without touching the array, its indexes, or the planner.
fn oracle(
    case: &Case,
    cells: &[(Vec<i64>, Vec<i64>)],
    group_by: &[DimGrouping],
    sels: &[Vec<Selection>],
    agg: AggFunc,
) -> Vec<Row> {
    let mut groups: BTreeMap<Vec<i64>, (i64, u64, i64, i64)> = BTreeMap::new();
    for (keys, measures) in cells {
        if !accepted(case, sels, keys) {
            continue;
        }
        let mut gk = Vec::new();
        for (d, g) in group_by.iter().enumerate() {
            match g {
                DimGrouping::Key => gk.push(keys[d]),
                DimGrouping::Level(_) => gk.push(keys[d] / case.dims[d].1),
                DimGrouping::Drop => {}
            }
        }
        let m = measures[0];
        let e = groups.entry(gk).or_insert((0, 0, i64::MAX, i64::MIN));
        e.0 += m;
        e.1 += 1;
        e.2 = e.2.min(m);
        e.3 = e.3.max(m);
    }
    groups
        .into_iter()
        .map(|(keys, (sum, count, min, max))| Row {
            keys,
            values: vec![match agg {
                AggFunc::Sum => AggValue::Int(sum),
                AggFunc::Count => AggValue::Int(count as i64),
                AggFunc::Min => AggValue::Int(min),
                AggFunc::Max => AggValue::Int(max),
                AggFunc::Avg => AggValue::Ratio { sum, count },
            }],
        })
        .collect()
}

/// (size, level block, chunk, selection kind, selection value) per dim.
type DimSpec = (i64, i64, u32, u8, i64);

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        proptest::collection::vec((10i64..24, 2i64..4, 2u32..8, 0u8..5, 0i64..20), 2..4),
        0u8..3,
        any::<u64>(),
    )
        .prop_map(|(dims, fmt, seed): (Vec<DimSpec>, u8, u64)| {
            let format = match fmt {
                0 => ChunkFormat::ChunkOffset,
                1 => ChunkFormat::Dense,
                _ => ChunkFormat::DiffSeq,
            };
            let mut spec = Vec::new();
            let mut chunk = Vec::new();
            let mut group_by = Vec::new();
            let mut selections = Vec::new();
            for (n, b0, ch, sk, sv) in dims {
                spec.push((n, b0));
                chunk.push(ch.min(n as u32).max(1));
                group_by.push(if sk % 2 == 0 {
                    DimGrouping::Key
                } else {
                    DimGrouping::Level(0)
                });
                let sv = sv % n;
                let sels = match sk {
                    0 => Vec::new(),
                    // Narrow shapes: the planner keeps them on the
                    // B-tree; small cross-products probe.
                    1 => vec![Selection::eq(AttrRef::Key, sv)],
                    2 => vec![Selection::range(AttrRef::Key, sv, sv + 3)],
                    // Wide shapes: HBI-routed under Auto; large
                    // cross-products force the scan direction.
                    3 => vec![Selection::range(AttrRef::Key, 0, sv + 9)],
                    _ => vec![Selection::in_list(
                        AttrRef::Key,
                        (0..n).filter(|k| (k + sv) % 3 != 0).collect(),
                    )],
                };
                selections.push(sels);
            }
            Case {
                dims: spec,
                chunk,
                format,
                group_by,
                selections,
                seed,
            }
        })
}

fn query(case: &Case, agg: AggFunc) -> Query {
    let mut q = Query::new(case.group_by.clone()).with_aggs(vec![agg]);
    q.selections = case.selections.clone();
    q
}

/// True when some selection is wide enough for `Auto` to route it to
/// the HBI. Mirrors the planner's shape thresholds in the small-
/// dimension regime these cases generate (≤ 24 distinct values, where
/// both fraction-scaled thresholds bottom out at their floor of 8).
fn has_wide_shape(case: &Case) -> bool {
    case.selections.iter().flatten().any(|s| match &s.pred {
        Pred::In(values) => values.len() >= 8,
        Pred::Range { lo, hi } => hi - lo >= 7,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For every aggregate, the three planner modes agree with each
    /// other and with the full-scan oracle, bit for bit.
    #[test]
    fn hbi_routing_is_bit_identical_to_btree_and_oracle(case in case_strategy()) {
        let cells = build_cells(&case);
        let adt = build_adt(&case, cells.clone());
        for agg in AGGS {
            let q = query(&case, agg);
            adt.set_planner_mode(PlannerMode::ForceBtree);
            let btree = adt.consolidate(&q).unwrap();
            adt.set_planner_mode(PlannerMode::ForceHbi);
            let hbi = adt.consolidate(&q).unwrap();
            adt.set_planner_mode(PlannerMode::Auto);
            let auto = adt.consolidate(&q).unwrap();
            prop_assert_eq!(&hbi, &btree, "HBI vs B-tree diverged under {:?}", agg);
            prop_assert_eq!(&auto, &btree, "Auto vs B-tree diverged under {:?}", agg);
            prop_assert_eq!(
                btree.rows(),
                &oracle(&case, &cells, &case.group_by, &case.selections, agg)[..],
                "planner paths diverged from the full-scan oracle under {:?}", agg
            );
        }
    }

    /// The final index lists themselves agree between the forced modes,
    /// and `Auto` actually routes wide shapes through the HBI (the
    /// telemetry counters prove which path ran).
    #[test]
    fn planner_routes_by_shape_and_lists_agree(case in case_strategy()) {
        let cells = build_cells(&case);
        let adt = build_adt(&case, cells);
        let q = query(&case, AggFunc::Sum);
        for d in 0..case.dims.len() {
            adt.set_planner_mode(PlannerMode::ForceBtree);
            let via_btree = adt.selection_index_list(&q, d).unwrap();
            adt.set_planner_mode(PlannerMode::ForceHbi);
            let via_hbi = adt.selection_index_list(&q, d).unwrap();
            prop_assert_eq!(via_btree, via_hbi, "index lists diverged on dim {}", d);
        }
        adt.set_planner_mode(PlannerMode::Auto);
        let stats = adt.pool().stats();
        let before = stats.snapshot();
        for d in 0..case.dims.len() {
            adt.selection_index_list(&q, d).unwrap();
        }
        let delta = stats.snapshot().since(&before);
        if has_wide_shape(&case) {
            prop_assert!(delta.planner_hbi > 0, "wide shape never routed to the HBI");
            prop_assert!(delta.hbi_probes > 0, "HBI route must probe the index");
        } else {
            prop_assert_eq!(delta.planner_hbi, 0, "narrow shapes must stay on the B-tree");
        }
    }
}
