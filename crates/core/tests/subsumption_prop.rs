//! Property tests for the result-cube cache's rollup subsumption:
//! answers derived from a cached finer cube must be bit-identical to a
//! direct (uncached) consolidation, AVG must be answerable from cached
//! SUM+COUNT states, and non-subsumable query pairs must fall back to
//! computation instead of deriving a wrong answer.

use std::sync::Arc;

use molap_array::ChunkFormat;
use molap_core::{
    consolidate_auto, AggFunc, AttrRef, DimGrouping, DimensionTable, OlapArray, Query, Selection,
};
use molap_storage::{BufferPool, IoSnapshot, MemDisk};
use proptest::prelude::*;

/// One randomly generated cube plus a fine/coarse query pair whose
/// coarse side is derivable from the fine side by construction.
#[derive(Debug, Clone)]
struct Case {
    /// Per-dimension: (key count, level-0 block, level-1 block).
    dims: Vec<(i64, i64, i64)>,
    chunk: Vec<u32>,
    format: ChunkFormat,
    fine: Vec<DimGrouping>,
    coarse: Vec<DimGrouping>,
    selections: Vec<Vec<Selection>>,
    seed: u64,
}

/// Deterministic cell hash: drives both validity and measure values.
fn cell_hash(seed: u64, keys: &[i64]) -> i64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for &k in keys {
        h = (h ^ k as u64).wrapping_mul(0x0100_0000_01B3);
        h ^= h >> 29;
    }
    (h >> 16) as i64 % 997 - 400
}

/// Builds dimension tables whose level 1 is a function of level 0
/// (`h2 = h1 / b1`), so Level(0) → Level(1) rollups are always valid.
fn build_dims(spec: &[(i64, i64, i64)]) -> Vec<DimensionTable> {
    spec.iter()
        .enumerate()
        .map(|(d, &(n, b0, b1))| {
            let keys: Vec<i64> = (0..n).collect();
            let l0: Vec<i64> = keys.iter().map(|k| k / b0).collect();
            let l1: Vec<i64> = l0.iter().map(|c| c / b1).collect();
            DimensionTable::build(&format!("dim{d}"), &keys, vec![("h1", l0), ("h2", l1)]).unwrap()
        })
        .collect()
}

fn build_adt(case: &Case) -> OlapArray {
    let dims = build_dims(&case.dims);
    let sizes: Vec<i64> = case.dims.iter().map(|&(n, _, _)| n).collect();
    let mut cells: Vec<(Vec<i64>, Vec<i64>)> = Vec::new();
    let mut coords = vec![0i64; sizes.len()];
    loop {
        let h = cell_hash(case.seed, &coords);
        if h.rem_euclid(4) != 0 {
            cells.push((coords.clone(), vec![h]));
        }
        let mut d = sizes.len();
        let mut done = true;
        while d > 0 {
            d -= 1;
            if coords[d] + 1 < sizes[d] {
                coords[d] += 1;
                coords.iter_mut().skip(d + 1).for_each(|c| *c = 0);
                done = false;
                break;
            }
        }
        if done {
            break;
        }
    }
    let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 2048));
    OlapArray::build(pool, dims, &case.chunk, case.format, cells, 1).unwrap()
}

fn snapshot(adt: &OlapArray) -> IoSnapshot {
    adt.pool().stats().snapshot()
}

/// (size, b0, b1, chunk, fine selector, coarsen op, selection kind,
/// selection value) per dimension.
type DimSpec = (i64, i64, i64, u32, u8, u8, u8, i64);

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        proptest::collection::vec(
            (
                4i64..14,
                2i64..4,
                2i64..3,
                2u32..6,
                0u8..3,
                0u8..3,
                0u8..4,
                0i64..12,
            ),
            2..4,
        ),
        0u8..2,
        any::<u64>(),
    )
        .prop_map(|(dims, fmt, seed): (Vec<DimSpec>, u8, u64)| {
            let format = if fmt == 0 {
                ChunkFormat::ChunkOffset
            } else {
                ChunkFormat::Dense
            };
            let mut spec = Vec::new();
            let mut chunk = Vec::new();
            let mut fine = Vec::new();
            let mut coarse = Vec::new();
            let mut selections = Vec::new();
            for (n, b0, b1, ch, f, c, sk, sv) in dims {
                spec.push((n, b0, b1));
                chunk.push(ch.min(n as u32).max(1));
                let fine_g = match f {
                    0 => DimGrouping::Key,
                    1 => DimGrouping::Level(0),
                    _ => DimGrouping::Level(1),
                };
                // Coarsening walks the hierarchy one step (Key → h1,
                // h1 → h2, h2 → Drop) or drops the dimension outright;
                // every step is derivable because h2 = f(h1) = g(key).
                let coarse_g = match (c, fine_g) {
                    (0, g) => g,
                    (1, DimGrouping::Key) => DimGrouping::Level(0),
                    (1, DimGrouping::Level(0)) => DimGrouping::Level(1),
                    _ => DimGrouping::Drop,
                };
                fine.push(fine_g);
                coarse.push(coarse_g);
                let sels = match sk {
                    0 => Vec::new(),
                    1 => vec![Selection::eq(AttrRef::Level(0), sv % (n / b0 + 1))],
                    2 => vec![Selection::in_list(AttrRef::Key, vec![sv, sv + 2, sv % 3])],
                    _ => vec![Selection::range(AttrRef::Key, sv, sv + 5)],
                };
                selections.push(sels);
            }
            Case {
                dims: spec,
                chunk,
                format,
                fine,
                coarse,
                selections,
                seed,
            }
        })
}

fn query(group_by: &[DimGrouping], selections: &[Vec<Selection>], agg: AggFunc) -> Query {
    let mut q = Query::new(group_by.to_vec()).with_aggs(vec![agg]);
    q.selections = selections.to_vec();
    q
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Caching a fine cube, then answering a strictly coarser query
    /// from it by rollup, yields results bit-identical to consolidating
    /// the coarse query directly against the array.
    #[test]
    fn derived_results_match_direct_consolidation(case in case_strategy()) {
        let adt = build_adt(&case);
        let q_fine = query(&case.fine, &case.selections, AggFunc::Sum);
        let q_coarse = query(&case.coarse, &case.selections, AggFunc::Sum);

        let got_fine = consolidate_auto(&adt, &q_fine).unwrap();
        prop_assert_eq!(&got_fine, &adt.consolidate(&q_fine).unwrap());

        let before = snapshot(&adt);
        let got_coarse = consolidate_auto(&adt, &q_coarse).unwrap();
        // Bit-identical to the sequential, uncached oracle.
        prop_assert_eq!(&got_coarse, &adt.consolidate(&q_coarse).unwrap());

        let after = snapshot(&adt);
        if q_coarse == q_fine {
            prop_assert!(after.result_cache_hits > before.result_cache_hits,
                "identical repeat must be an exact cache hit");
        } else {
            prop_assert!(after.result_cache_derived > before.result_cache_derived,
                "a strictly coarser query must be derived from the cached fine cube");
        }
    }

    /// AVG is answerable from the cached SUM+COUNT aggregation states:
    /// caching under SUM and re-querying under AVG is an exact hit and
    /// matches a direct AVG consolidation.
    #[test]
    fn avg_is_answered_from_cached_sum_count(case in case_strategy()) {
        let adt = build_adt(&case);
        let q_sum = query(&case.fine, &case.selections, AggFunc::Sum);
        let q_avg = query(&case.fine, &case.selections, AggFunc::Avg);

        consolidate_auto(&adt, &q_sum).unwrap();
        let before = snapshot(&adt);
        let got = consolidate_auto(&adt, &q_avg).unwrap();
        let after = snapshot(&adt);

        prop_assert_eq!(&got, &adt.consolidate(&q_avg).unwrap());
        prop_assert!(after.result_cache_hits > before.result_cache_hits,
            "AVG over the same grouping must hit the SUM+COUNT states");
    }

    /// A pair that is *not* subsumable — finer grouping than the cached
    /// cube, or different selections — must not be derived: it falls
    /// back to computation and still matches the oracle.
    #[test]
    fn non_subsumable_pairs_are_computed_not_derived(
        case in case_strategy(),
        refine_grouping in any::<bool>(),
    ) {
        let adt = build_adt(&case);
        // Force the cached query's first dimension away from Key so a
        // strictly finer probe exists.
        let mut cached_group = case.fine.clone();
        cached_group[0] = DimGrouping::Level(1);
        let q_cached = query(&cached_group, &case.selections, AggFunc::Sum);

        let q_bad = if refine_grouping {
            // Finer on dimension 0: a coarse cube cannot answer it.
            let mut g = cached_group.clone();
            g[0] = DimGrouping::Key;
            query(&g, &case.selections, AggFunc::Sum)
        } else {
            // Same grouping, different selections.
            let mut sels = case.selections.clone();
            sels[0].push(Selection::range(AttrRef::Key, 0, 2));
            query(&cached_group, &sels, AggFunc::Sum)
        };

        consolidate_auto(&adt, &q_cached).unwrap();
        let before = snapshot(&adt);
        let got = consolidate_auto(&adt, &q_bad).unwrap();
        let after = snapshot(&adt);

        prop_assert_eq!(&got, &adt.consolidate(&q_bad).unwrap());
        prop_assert_eq!(after.result_cache_derived, before.result_cache_derived,
            "a non-subsumable query must not be derived from the cache");
        prop_assert!(after.result_cache_misses > before.result_cache_misses);
    }
}
