//! The fact file: extent-based storage for fixed-length fact tuples.
//!
//! Section 4.4 of the paper builds "a specialized file structure
//! optimized for tables with small, fixed-size records", to make the
//! relational baseline as fast as possible:
//!
//! * fact tuples are fixed length, so the slotted-page machinery of a
//!   general heap file is pure overhead — the fact file stores records
//!   back to back and turns a *tuple number* into (extent, page within
//!   extent, offset within page) with pure arithmetic;
//! * pages are allocated in *extents* of `n` contiguous pages, because
//!   "it is not often possible to allocate \[a\] large set of pages
//!   contiguously for large fact tables"; a small in-memory table keeps
//!   the first page of each extent;
//! * the file "provides an interface that takes a bitmap and retrieves
//!   the tuples corresponding to non-zero bit positions" — the fetch
//!   path driving the §4.5 bitmap consolidation plan.
//!
//! Tuples are `n_dims` dimension keys (`u32`) followed by `n_measures`
//! measures (`i64`), matching the paper's `fact(d0,d1,d2,d3,volume)`
//! schema at `n_dims = 4, n_measures = 1`.
//!
//! # Example
//!
//! ```
//! use molap_factfile::{FactFile, TupleSchema};
//! use molap_storage::{BufferPool, MemDisk};
//! use std::sync::Arc;
//!
//! let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 64));
//! let mut ff = FactFile::create(pool, TupleSchema::new(3, 1), 4).unwrap();
//! ff.append(&[1, 2, 3], &[100]).unwrap();
//! ff.append(&[4, 5, 6], &[200]).unwrap();
//!
//! let mut sum = 0;
//! ff.scan(|_t, _dims, measures| sum += measures[0]).unwrap();
//! assert_eq!(sum, 300);
//! ```

#![forbid(unsafe_code)]

use std::sync::Arc;

use molap_bitmap::Bitmap;
use molap_storage::util::{read_i64, read_u32, read_u64, write_i64, write_u32, write_u64};
use molap_storage::{BufferPool, PageId, Result, StorageError, PAGE_SIZE};

/// Shape of a fact tuple: dimension keys then measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TupleSchema {
    /// Number of `u32` dimension key columns.
    pub n_dims: usize,
    /// Number of `i64` measure columns.
    pub n_measures: usize,
}

impl TupleSchema {
    /// Creates a schema; both counts must be nonzero-sum and small
    /// enough that a record fits a page.
    pub fn new(n_dims: usize, n_measures: usize) -> Self {
        let s = TupleSchema { n_dims, n_measures };
        assert!(s.record_size() > 0, "empty tuple schema");
        assert!(
            s.record_size() <= PAGE_SIZE,
            "record does not fit in a page"
        );
        s
    }

    /// Bytes per record: 4 per dimension key + 8 per measure.
    #[inline]
    pub fn record_size(&self) -> usize {
        4 * self.n_dims + 8 * self.n_measures
    }

    /// Records per page (records never straddle pages).
    #[inline]
    pub fn tuples_per_page(&self) -> usize {
        PAGE_SIZE / self.record_size()
    }
}

/// An append-only file of fixed-length fact tuples.
pub struct FactFile {
    pool: Arc<BufferPool>,
    schema: TupleSchema,
    extent_pages: u64,
    extents: Vec<PageId>,
    num_tuples: u64,
}

impl FactFile {
    /// Creates an empty fact file allocating `extent_pages` contiguous
    /// pages per extent.
    pub fn create(pool: Arc<BufferPool>, schema: TupleSchema, extent_pages: u64) -> Result<Self> {
        assert!(extent_pages > 0, "extents must contain at least one page");
        Ok(FactFile {
            pool,
            schema,
            extent_pages,
            extents: Vec::new(),
            num_tuples: 0,
        })
    }

    /// The tuple schema.
    pub fn schema(&self) -> TupleSchema {
        self.schema
    }

    /// Number of stored tuples.
    pub fn num_tuples(&self) -> u64 {
        self.num_tuples
    }

    /// Pages allocated (including slack in the last extent).
    pub fn total_pages(&self) -> u64 {
        self.extents.len() as u64 * self.extent_pages
    }

    /// Pages actually holding data.
    pub fn used_pages(&self) -> u64 {
        self.num_tuples
            .div_ceil(self.schema.tuples_per_page() as u64)
    }

    /// On-disk footprint in bytes (used pages × page size).
    pub fn bytes_on_disk(&self) -> u64 {
        self.used_pages() * PAGE_SIZE as u64
    }

    /// Maps a tuple number to its page and byte offset.
    #[inline]
    fn locate(&self, t: u64) -> (PageId, usize) {
        let tpp = self.schema.tuples_per_page() as u64;
        let page_index = t / tpp;
        let extent = (page_index / self.extent_pages) as usize;
        let within = page_index % self.extent_pages;
        let offset = (t % tpp) as usize * self.schema.record_size();
        (self.extents[extent].offset(within), offset)
    }

    /// Appends one tuple; returns its tuple number.
    pub fn append(&mut self, dims: &[u32], measures: &[i64]) -> Result<u64> {
        assert_eq!(dims.len(), self.schema.n_dims, "dimension arity");
        assert_eq!(measures.len(), self.schema.n_measures, "measure arity");
        let t = self.num_tuples;
        let tpp = self.schema.tuples_per_page() as u64;
        let page_index = t / tpp;
        // Grow by one extent when the tuple lands past the allocated area.
        if page_index >= self.total_pages() {
            let start = self.pool.allocate_pages(self.extent_pages)?;
            self.extents.push(start);
        }
        let (pid, off) = self.locate(t);
        // First tuple on a page: page is fresh, skip the read.
        let mut page = if t.is_multiple_of(tpp) {
            self.pool.create_page(pid)?
        } else {
            self.pool.fetch_mut(pid)?
        };
        let mut pos = off;
        for &d in dims {
            write_u32(&mut page[..], pos, d);
            pos += 4;
        }
        for &m in measures {
            write_i64(&mut page[..], pos, m);
            pos += 8;
        }
        self.num_tuples += 1;
        Ok(t)
    }

    /// Reads tuple `t` into the caller's buffers.
    pub fn read_tuple(&self, t: u64, dims: &mut [u32], measures: &mut [i64]) -> Result<()> {
        if t >= self.num_tuples {
            return Err(StorageError::Corrupt("tuple number out of range"));
        }
        assert_eq!(dims.len(), self.schema.n_dims);
        assert_eq!(measures.len(), self.schema.n_measures);
        let (pid, off) = self.locate(t);
        let page = self.pool.fetch(pid)?;
        decode_tuple(&page[..], off, dims, measures);
        Ok(())
    }

    /// Sequential scan: calls `f(tuple_no, dims, measures)` for every
    /// tuple in tuple-number order. One page fetch per page, not per
    /// tuple — this is the baseline StarJoin's input path.
    pub fn scan<F>(&self, mut f: F) -> Result<()>
    where
        F: FnMut(u64, &[u32], &[i64]),
    {
        let tpp = self.schema.tuples_per_page() as u64;
        let mut dims = vec![0u32; self.schema.n_dims];
        let mut measures = vec![0i64; self.schema.n_measures];
        let mut t = 0u64;
        while t < self.num_tuples {
            let (pid, _) = self.locate(t);
            let page = self.pool.fetch(pid)?;
            let on_page = tpp.min(self.num_tuples - t);
            for i in 0..on_page {
                let off = i as usize * self.schema.record_size();
                decode_tuple(&page[..], off, &mut dims, &mut measures);
                f(t + i, &dims, &measures);
            }
            t += on_page;
        }
        Ok(())
    }

    /// Bitmap-driven fetch: calls `f` for every tuple whose bit is set,
    /// in tuple-number order (§4.4's "takes a bitmap and retrieves the
    /// tuples corresponding to non-zero bit positions").
    ///
    /// The bitmap must span exactly [`FactFile::num_tuples`] bits.
    pub fn fetch_bitmap<F>(&self, bitmap: &Bitmap, mut f: F) -> Result<()>
    where
        F: FnMut(u64, &[u32], &[i64]),
    {
        assert_eq!(
            bitmap.nbits() as u64,
            self.num_tuples,
            "bitmap width must equal tuple count"
        );
        let tpp = self.schema.tuples_per_page() as u64;
        let mut dims = vec![0u32; self.schema.n_dims];
        let mut measures = vec![0i64; self.schema.n_measures];
        // Positions arrive in increasing order, so consecutive hits on
        // the same page reuse one guard.
        let mut current: Option<(u64, molap_storage::PageRef<'_>)> = None;
        for pos in bitmap.iter_ones() {
            let t = pos as u64;
            let page_index = t / tpp;
            let need_fetch = match &current {
                Some((idx, _)) => *idx != page_index,
                None => true,
            };
            if need_fetch {
                let (pid, _) = self.locate(t);
                current = Some((page_index, self.pool.fetch(pid)?));
            }
            let (_, page) = current.as_ref().unwrap();
            let off = (t % tpp) as usize * self.schema.record_size();
            decode_tuple(&page[..], off, &mut dims, &mut measures);
            f(t, &dims, &measures);
        }
        Ok(())
    }

    /// Serializes schema + extent table + tuple count.
    pub fn meta_to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; 32 + self.extents.len() * 8];
        write_u32(&mut out, 0, self.schema.n_dims as u32);
        write_u32(&mut out, 4, self.schema.n_measures as u32);
        write_u64(&mut out, 8, self.extent_pages);
        write_u64(&mut out, 16, self.num_tuples);
        write_u32(&mut out, 24, self.extents.len() as u32);
        for (i, e) in self.extents.iter().enumerate() {
            write_u64(&mut out, 32 + i * 8, e.0);
        }
        out
    }

    /// Inverse of [`FactFile::meta_to_bytes`] over the same pool.
    pub fn from_meta_bytes(pool: Arc<BufferPool>, bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 32 {
            return Err(StorageError::Corrupt("fact file meta header"));
        }
        let schema = TupleSchema::new(read_u32(bytes, 0) as usize, read_u32(bytes, 4) as usize);
        let extent_pages = read_u64(bytes, 8);
        let num_tuples = read_u64(bytes, 16);
        let n_extents = read_u32(bytes, 24) as usize;
        if bytes.len() < 32 + n_extents * 8 {
            return Err(StorageError::Corrupt("fact file extent table truncated"));
        }
        let extents = (0..n_extents)
            .map(|i| PageId(read_u64(bytes, 32 + i * 8)))
            .collect();
        Ok(FactFile {
            pool,
            schema,
            extent_pages,
            extents,
            num_tuples,
        })
    }
}

#[inline]
fn decode_tuple(page: &[u8], mut off: usize, dims: &mut [u32], measures: &mut [i64]) {
    for d in dims.iter_mut() {
        *d = read_u32(page, off);
        off += 4;
    }
    for m in measures.iter_mut() {
        *m = read_i64(page, off);
        off += 8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use molap_storage::MemDisk;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 128))
    }

    fn fill(ff: &mut FactFile, n: u64) {
        for t in 0..n {
            let dims: Vec<u32> = (0..ff.schema().n_dims as u32)
                .map(|d| t as u32 + d)
                .collect();
            let measures: Vec<i64> = (0..ff.schema().n_measures as i64)
                .map(|m| t as i64 * 10 + m)
                .collect();
            ff.append(&dims, &measures).unwrap();
        }
    }

    #[test]
    fn schema_arithmetic() {
        let s = TupleSchema::new(4, 1);
        assert_eq!(s.record_size(), 24);
        assert_eq!(s.tuples_per_page(), PAGE_SIZE / 24);
        let s2 = TupleSchema::new(3, 2);
        assert_eq!(s2.record_size(), 28);
    }

    #[test]
    #[should_panic(expected = "empty tuple schema")]
    fn empty_schema_panics() {
        TupleSchema::new(0, 0);
    }

    #[test]
    fn append_read_roundtrip_across_extents() {
        let mut ff = FactFile::create(pool(), TupleSchema::new(4, 1), 2).unwrap();
        // 4-dim + 1 measure = 24B, 341/page; 3 pages of data = 2 extents.
        let n = 1000u64;
        fill(&mut ff, n);
        assert_eq!(ff.num_tuples(), n);
        assert!(ff.total_pages() >= ff.used_pages());
        assert_eq!(ff.used_pages(), n.div_ceil(341));

        let mut dims = [0u32; 4];
        let mut measures = [0i64; 1];
        for t in [0u64, 1, 340, 341, 682, 999] {
            ff.read_tuple(t, &mut dims, &mut measures).unwrap();
            assert_eq!(dims[0], t as u32);
            assert_eq!(dims[3], t as u32 + 3);
            assert_eq!(measures[0], t as i64 * 10);
        }
        assert!(ff.read_tuple(n, &mut dims, &mut measures).is_err());
    }

    #[test]
    fn scan_visits_all_in_order() {
        let mut ff = FactFile::create(pool(), TupleSchema::new(2, 1), 4).unwrap();
        fill(&mut ff, 777);
        let mut seen = Vec::new();
        ff.scan(|t, dims, measures| {
            assert_eq!(dims[0], t as u32);
            assert_eq!(measures[0], t as i64 * 10);
            seen.push(t);
        })
        .unwrap();
        assert_eq!(seen, (0..777).collect::<Vec<_>>());
    }

    #[test]
    fn scan_costs_one_logical_read_per_page() {
        let p = pool();
        let mut ff = FactFile::create(p.clone(), TupleSchema::new(4, 1), 8).unwrap();
        fill(&mut ff, 1000);
        let before = p.stats().snapshot();
        ff.scan(|_, _, _| {}).unwrap();
        let delta = p.stats().snapshot().since(&before);
        assert_eq!(delta.logical_reads, ff.used_pages());
    }

    #[test]
    fn fetch_bitmap_equals_filtered_scan() {
        let mut ff = FactFile::create(pool(), TupleSchema::new(3, 1), 4).unwrap();
        fill(&mut ff, 500);
        let mut bm = Bitmap::new(500);
        for t in (0..500).step_by(7) {
            bm.set(t);
        }
        let mut via_bitmap = Vec::new();
        ff.fetch_bitmap(&bm, |t, dims, m| via_bitmap.push((t, dims[0], m[0])))
            .unwrap();
        let mut via_scan = Vec::new();
        ff.scan(|t, dims, m| {
            if t % 7 == 0 {
                via_scan.push((t, dims[0], m[0]));
            }
        })
        .unwrap();
        assert_eq!(via_bitmap, via_scan);
    }

    #[test]
    fn sparse_fetch_reads_few_pages() {
        let p = pool();
        let mut ff = FactFile::create(p.clone(), TupleSchema::new(4, 1), 8).unwrap();
        fill(&mut ff, 10_000); // ~30 pages
        p.clear().unwrap();
        let mut bm = Bitmap::new(10_000);
        bm.set(5);
        bm.set(6); // same page as 5
        bm.set(9_999);
        let before = p.stats().snapshot();
        let mut hits = 0;
        ff.fetch_bitmap(&bm, |_, _, _| hits += 1).unwrap();
        let delta = p.stats().snapshot().since(&before);
        assert_eq!(hits, 3);
        assert_eq!(delta.physical_reads, 2, "two distinct pages touched");
    }

    #[test]
    #[should_panic(expected = "bitmap width")]
    fn wrong_width_bitmap_panics() {
        let mut ff = FactFile::create(pool(), TupleSchema::new(2, 1), 4).unwrap();
        fill(&mut ff, 10);
        let bm = Bitmap::new(11);
        ff.fetch_bitmap(&bm, |_, _, _| {}).unwrap();
    }

    #[test]
    fn empty_file_scans_nothing() {
        let ff = FactFile::create(pool(), TupleSchema::new(2, 1), 4).unwrap();
        let mut n = 0;
        ff.scan(|_, _, _| n += 1).unwrap();
        assert_eq!(n, 0);
        assert_eq!(ff.bytes_on_disk(), 0);
        ff.fetch_bitmap(&Bitmap::new(0), |_, _, _| n += 1).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn meta_roundtrip_reopens_file() {
        let p = pool();
        let mut ff = FactFile::create(p.clone(), TupleSchema::new(4, 1), 4).unwrap();
        fill(&mut ff, 600);
        let meta = ff.meta_to_bytes();
        let reopened = FactFile::from_meta_bytes(p, &meta).unwrap();
        assert_eq!(reopened.num_tuples(), 600);
        let mut dims = [0u32; 4];
        let mut m = [0i64; 1];
        reopened.read_tuple(599, &mut dims, &mut m).unwrap();
        assert_eq!(dims[0], 599);
        assert_eq!(m[0], 5990);
        assert!(FactFile::from_meta_bytes(pool(), &meta[..10]).is_err());
    }

    #[test]
    fn no_slotted_page_overhead() {
        // The whole point of the fact file (§4.4): storage is exactly
        // ceil(tuples / tuples_per_page) pages, nothing more.
        let mut ff = FactFile::create(pool(), TupleSchema::new(4, 1), 16).unwrap();
        fill(&mut ff, 341); // exactly one full page at 24B records
        assert_eq!(ff.used_pages(), 1);
        fill(&mut ff, 1);
        assert_eq!(ff.used_pages(), 2);
    }
}
