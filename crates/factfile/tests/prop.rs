//! Property tests: the fact file against a `Vec`-of-tuples model.

use std::sync::Arc;

use molap_bitmap::Bitmap;
use molap_factfile::{FactFile, TupleSchema};
use molap_storage::{BufferPool, MemDisk};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_matches_model(
        n_dims in 1usize..6,
        n_measures in 1usize..3,
        extent_pages in 1u64..8,
        tuples in proptest::collection::vec((0u32..1000, -1000i64..1000), 0..600),
    ) {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 256));
        let schema = TupleSchema::new(n_dims, n_measures);
        let mut ff = FactFile::create(pool, schema, extent_pages).unwrap();

        let model: Vec<(Vec<u32>, Vec<i64>)> = tuples
            .iter()
            .map(|&(d, m)| {
                let dims: Vec<u32> = (0..n_dims as u32).map(|i| d.wrapping_add(i)).collect();
                let measures: Vec<i64> = (0..n_measures as i64).map(|i| m + i).collect();
                (dims, measures)
            })
            .collect();
        for (dims, measures) in &model {
            ff.append(dims, measures).unwrap();
        }
        prop_assert_eq!(ff.num_tuples(), model.len() as u64);

        // Point reads.
        let mut dims = vec![0u32; n_dims];
        let mut measures = vec![0i64; n_measures];
        for (t, (ed, em)) in model.iter().enumerate() {
            ff.read_tuple(t as u64, &mut dims, &mut measures).unwrap();
            prop_assert_eq!(&dims, ed);
            prop_assert_eq!(&measures, em);
        }

        // Full scan.
        let mut scanned = Vec::new();
        ff.scan(|t, d, m| scanned.push((t, d.to_vec(), m.to_vec()))).unwrap();
        prop_assert_eq!(scanned.len(), model.len());
        for (t, d, m) in &scanned {
            prop_assert_eq!(d, &model[*t as usize].0);
            prop_assert_eq!(m, &model[*t as usize].1);
        }
    }

    #[test]
    fn bitmap_fetch_equals_filtered_scan(
        n in 0usize..500,
        selected in proptest::collection::vec(0usize..500, 0..100),
    ) {
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 256));
        let mut ff = FactFile::create(pool, TupleSchema::new(4, 1), 4).unwrap();
        for t in 0..n {
            ff.append(&[t as u32, 0, 1, 2], &[t as i64]).unwrap();
        }
        let mut bm = Bitmap::new(n);
        for &s in &selected {
            if s < n {
                bm.set(s);
            }
        }
        let mut via_bitmap = Vec::new();
        ff.fetch_bitmap(&bm, |t, _, m| via_bitmap.push((t, m[0]))).unwrap();
        let mut via_scan = Vec::new();
        ff.scan(|t, _, m| {
            if bm.get(t as usize) {
                via_scan.push((t, m[0]));
            }
        }).unwrap();
        prop_assert_eq!(via_bitmap, via_scan);
    }
}
