//! Synthetic star-schema generator for the paper's test databases.
//!
//! The test schema (§5.1) is
//!
//! ```text
//! fact (d0 int, d1 int, d2 int, d3 int, volume int)
//! dimX (dX int, hX1 string, hX2 string)      X = 0..3
//! ```
//!
//! with the `hX1`/`hX2` attributes "uniformly distributed" and
//! "hierarchically structured". Two dataset families drive the
//! evaluation (§5.4):
//!
//! * **Data Set 1** ([`CubeSpec::dataset1`]): 4-d arrays
//!   40×40×40×{50,100,1000} with 640 000 valid cells — densities 20 %,
//!   10 %, 1 %.
//! * **Data Set 2** ([`CubeSpec::dataset2`]): 40×40×40×100 with the
//!   valid-cell count swept so density ranges 0.5 %–20 %.
//!
//! Attribute values are exactly uniform (every value covers
//! `size / cardinality` rows) and the assignment layout is selectable:
//!
//! * [`AttrLayout::Blocked`] (default) — `value = row / (size/card)`:
//!   rows of one group are contiguous, as in a dimension table sorted
//!   by its hierarchy (all Madison stores adjacent). This is the
//!   natural reading of the paper's hierarchical dimensions, and it
//!   means a selection maps to contiguous array-index ranges.
//! * [`AttrLayout::Scattered`] — `value = row % card`: groups
//!   interleave, so selected rows spread uniformly across the array
//!   (the regime behind the paper's low-selectivity observation that
//!   surviving cells are "distributed throughout the array", §5.6).
//!
//! Deeper levels are derived from the level above, so the columns form
//! a real hierarchy; a [`CubeSpec::with_selection_cardinality`]
//! attribute finer than its parent is derived from the key (blocked) or
//! an independent seeded permutation (scattered). Valid cells are
//! sampled uniformly without replacement; all randomness is seeded and
//! reproducible.

#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::sync::Arc;

use molap_core::{ChunkFormat, DimensionTable, OlapArray, Result};
use molap_storage::BufferPool;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How attribute values are laid out over a dimension's rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttrLayout {
    /// Contiguous groups (`row / (size/card)`): the dimension table is
    /// sorted by its hierarchy.
    Blocked,
    /// Interleaved groups (`row % card`): selections scatter across the
    /// array.
    Scattered,
}

/// Specification of a synthetic cube and its dimension tables.
#[derive(Clone, Debug, PartialEq)]
pub struct CubeSpec {
    /// Size of each dimension (number of rows in its table).
    pub dim_sizes: Vec<u32>,
    /// Per dimension, the cardinality of each hierarchy attribute,
    /// top (finest) first — e.g. `[10, 2]` gives `h1` with 10 distinct
    /// values and `h2` (derived from `h1`) with 2.
    pub level_cards: Vec<Vec<u32>>,
    /// Number of valid cells to sample.
    pub valid_cells: u64,
    /// RNG seed; equal specs generate identical data.
    pub seed: u64,
    /// Measures per cell (the paper uses 1: `volume`).
    pub n_measures: usize,
    /// When true, each dimension's *last* level is assigned
    /// independently of the hierarchy (set by
    /// [`CubeSpec::with_selection_cardinality`], since a selection
    /// attribute correlated with the group-by attribute would distort
    /// the Query 2 experiments).
    pub independent_last_level: bool,
    /// Attribute layout (see [`AttrLayout`]).
    pub layout: AttrLayout,
}

impl CubeSpec {
    /// Data Set 1 (§5.4): 40×40×40×`fourth`, 640 000 valid cells.
    /// `fourth ∈ {50, 100, 1000}` gives densities 20 %, 10 %, 1 %.
    pub fn dataset1(fourth: u32) -> Self {
        CubeSpec {
            dim_sizes: vec![40, 40, 40, fourth],
            level_cards: default_levels(&[40, 40, 40, fourth]),
            valid_cells: 640_000,
            seed: 1998,
            n_measures: 1,
            independent_last_level: false,
            layout: AttrLayout::Blocked,
        }
    }

    /// Data Set 2 (§5.4): 40×40×40×100 at the given density (fraction
    /// of the 6.4 M cells that are valid), e.g. `0.005 ..= 0.20`.
    pub fn dataset2(density: f64) -> Self {
        let total = 40u64 * 40 * 40 * 100;
        CubeSpec {
            dim_sizes: vec![40, 40, 40, 100],
            level_cards: default_levels(&[40, 40, 40, 100]),
            valid_cells: (total as f64 * density).round() as u64,
            seed: 1998,
            n_measures: 1,
            independent_last_level: false,
            layout: AttrLayout::Blocked,
        }
    }

    /// The PR 10 crossover-selectivity sweep cube: one big dimension
    /// of `rows` keys whose first attribute carries `distinct` values
    /// in contiguous blocks (so a range predicate maps to a contiguous
    /// index span, the regime hierarchical bitmap indices target),
    /// crossed with a small 64-row dimension; 1 cell in 8 is valid.
    pub fn selection_sweep(rows: u32, distinct: u32) -> Self {
        CubeSpec {
            dim_sizes: vec![rows, 64],
            level_cards: vec![vec![distinct], vec![8]],
            valid_cells: rows as u64 * 64 / 8,
            seed: 2010,
            n_measures: 1,
            independent_last_level: false,
            layout: AttrLayout::Blocked,
        }
    }

    /// Overrides the selection attribute: appends (or replaces) each
    /// dimension's *last* level with cardinality `v`, as Query 2 varies
    /// "the number of distinct values for the second attribute of each
    /// dimension table from 2, 3, 4, 5, 8, to 10" (§5.6).
    pub fn with_selection_cardinality(mut self, v: u32) -> Self {
        for (d, levels) in self.level_cards.iter_mut().enumerate() {
            let v = v.min(self.dim_sizes[d]);
            if levels.len() < 2 {
                levels.push(v);
            } else {
                let last = levels.len() - 1;
                levels[last] = v;
            }
        }
        self.independent_last_level = true;
        self
    }

    /// Fraction of valid cells.
    pub fn density(&self) -> f64 {
        self.valid_cells as f64 / self.total_cells() as f64
    }

    /// Total logical cells.
    pub fn total_cells(&self) -> u64 {
        self.dim_sizes.iter().map(|&s| s as u64).product()
    }
}

/// The paper-style default hierarchy: `h1` with ~size/10 values,
/// `h2` with ~size/100 (both at least 2).
fn default_levels(sizes: &[u32]) -> Vec<Vec<u32>> {
    sizes
        .iter()
        .map(|&s| vec![(s / 10).max(2), (s / 100).max(2)])
        .collect()
}

/// A generated cube: dimension tables plus valid cells.
pub struct GeneratedCube {
    /// Dimension tables `dim0 … dimN`, with string labels attached
    /// (`"AA0"`, `"AA1"`, … per level).
    pub dims: Vec<DimensionTable>,
    /// `(dimension keys, measures)` per valid cell.
    pub cells: Vec<(Vec<i64>, Vec<i64>)>,
    /// The spec this cube was generated from.
    pub spec: CubeSpec,
}

impl GeneratedCube {
    /// Total valid cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the cube has no valid cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Sum of the first measure over all cells (ground truth for the
    /// engines' global aggregate).
    pub fn total_volume(&self) -> i64 {
        self.cells.iter().map(|(_, m)| m[0]).sum()
    }

    /// Builds the OLAP Array ADT for this cube on `pool` in the given
    /// chunk codec — the one-flag format selection every test/bench
    /// harness plumbs through.
    pub fn build_olap(
        &self,
        pool: Arc<BufferPool>,
        chunk_dims: &[u32],
        format: ChunkFormat,
    ) -> Result<OlapArray> {
        OlapArray::build(
            pool,
            self.dims.clone(),
            chunk_dims,
            format,
            self.cells.iter().cloned(),
            self.spec.n_measures,
        )
    }
}

/// Generates dimension tables and cells from a spec.
pub fn generate(spec: &CubeSpec) -> Result<GeneratedCube> {
    assert_eq!(
        spec.dim_sizes.len(),
        spec.level_cards.len(),
        "level_cards arity must match dim_sizes"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // Dimension tables: key = row, attributes round-robin + derived.
    let mut dims = Vec::with_capacity(spec.dim_sizes.len());
    for (d, (&size, cards)) in spec.dim_sizes.iter().zip(&spec.level_cards).enumerate() {
        let keys: Vec<i64> = (0..size as i64).collect();
        let mut columns: Vec<(String, Vec<i64>)> = Vec::with_capacity(cards.len());
        let mut prev_card = i64::MAX;
        for (level, &card) in cards.iter().enumerate() {
            let card = (card.min(size).max(1)) as i64;
            // A level is hierarchical (derived from the level above)
            // only when it is strictly coarser; otherwise — e.g. a
            // Query-2 selection attribute appended after the hierarchy —
            // it cannot be functionally dependent on the level above and
            // is assigned independently: a seeded permutation of the
            // rows, taken mod the cardinality, keeps the distribution
            // exactly uniform while decorrelating it from `h1 = key %
            // card` and from the key order itself.
            let independent = spec.independent_last_level && level + 1 == cards.len() && level > 0;
            let block = (size as i64 / card).max(1);
            let from_key: Vec<i64> = match spec.layout {
                AttrLayout::Blocked => keys.iter().map(|&k| (k / block).min(card - 1)).collect(),
                AttrLayout::Scattered => keys.iter().map(|&k| k % card).collect(),
            };
            let values: Vec<i64> = if level == 0 {
                from_key
            } else if card < prev_card && !independent {
                // Hierarchical: derived from the level above.
                let parent_card = prev_card;
                let group = (parent_card / card).max(1);
                columns[level - 1]
                    .1
                    .iter()
                    .map(|&v| match spec.layout {
                        AttrLayout::Blocked => (v / group).min(card - 1),
                        AttrLayout::Scattered => v % card,
                    })
                    .collect()
            } else if spec.layout == AttrLayout::Blocked {
                // Finer-than-parent level: straight from the key.
                from_key
            } else {
                // Scattered + independent: a seeded permutation keeps
                // the distribution uniform and decorrelated.
                let mut perm: Vec<i64> = (0..size as i64).collect();
                perm.shuffle(&mut rng);
                (0..size as usize).map(|row| perm[row] % card).collect()
            };
            prev_card = card;
            columns.push((format!("h{}{}", d, level + 1), values));
        }
        let named: Vec<(&str, Vec<i64>)> = columns
            .iter()
            .map(|(n, v)| (n.as_str(), v.clone()))
            .collect();
        let mut table = DimensionTable::build(&format!("dim{d}"), &keys, named)?;
        for (level, &card) in cards.iter().enumerate() {
            let card = card.min(size).max(1);
            let labels = (0..card).map(|v| format!("A{}{v}", (b'A' + level as u8) as char));
            table.set_labels(level, labels.collect())?;
        }
        dims.push(table);
    }

    // Valid cells: uniform sample without replacement of linear
    // positions, decoded to per-dimension keys.
    let total = spec.total_cells();
    assert!(
        spec.valid_cells <= total,
        "cannot sample {} cells from a {total}-cell cube",
        spec.valid_cells
    );
    let mut chosen: HashSet<u64> = HashSet::with_capacity(spec.valid_cells as usize);
    while (chosen.len() as u64) < spec.valid_cells {
        chosen.insert(rng.random_range(0..total));
    }
    let mut positions: Vec<u64> = chosen.into_iter().collect();
    positions.sort_unstable();

    let n = spec.dim_sizes.len();
    let mut cells = Vec::with_capacity(positions.len());
    for pos in positions {
        let mut keys = vec![0i64; n];
        let mut rem = pos;
        for d in (0..n).rev() {
            keys[d] = (rem % spec.dim_sizes[d] as u64) as i64;
            rem /= spec.dim_sizes[d] as u64;
        }
        let measures: Vec<i64> = (0..spec.n_measures)
            .map(|_| rng.random_range(1..100))
            .collect();
        cells.push((keys, measures));
    }

    Ok(GeneratedCube {
        dims,
        cells,
        spec: spec.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> CubeSpec {
        CubeSpec {
            dim_sizes: vec![10, 8, 6],
            level_cards: vec![vec![5, 2], vec![4, 2], vec![3, 2]],
            valid_cells: 100,
            seed: 42,
            n_measures: 1,
            independent_last_level: false,
            layout: AttrLayout::Scattered,
        }
    }

    #[test]
    fn generates_requested_shape() {
        let cube = generate(&small_spec()).unwrap();
        assert_eq!(cube.dims.len(), 3);
        assert_eq!(cube.dims[0].len(), 10);
        assert_eq!(cube.dims[1].len(), 8);
        assert_eq!(cube.len(), 100);
        for (keys, measures) in &cube.cells {
            assert_eq!(keys.len(), 3);
            assert!((0..10).contains(&keys[0]));
            assert!((0..8).contains(&keys[1]));
            assert!((0..6).contains(&keys[2]));
            assert_eq!(measures.len(), 1);
            assert!((1..100).contains(&measures[0]));
        }
    }

    #[test]
    fn cells_are_distinct_positions() {
        let cube = generate(&small_spec()).unwrap();
        let set: HashSet<&Vec<i64>> = cube.cells.iter().map(|(k, _)| k).collect();
        assert_eq!(set.len(), cube.len(), "sampling is without replacement");
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let a = generate(&small_spec()).unwrap();
        let b = generate(&small_spec()).unwrap();
        assert_eq!(a.cells, b.cells);
        let mut other = small_spec();
        other.seed = 43;
        let c = generate(&other).unwrap();
        assert_ne!(a.cells, c.cells);
    }

    #[test]
    fn attributes_are_exactly_uniform() {
        let cube = generate(&small_spec()).unwrap();
        // dim0 h01: 10 rows round-robin over 5 values -> 2 each.
        let codes = cube.dims[0].attr_codes(0).unwrap();
        for v in 0..5i64 {
            assert_eq!(codes.iter().filter(|&&c| c == v).count(), 2);
        }
    }

    #[test]
    fn hierarchy_is_functional() {
        // Every h1 value must map to exactly one h2 value.
        let cube = generate(&small_spec()).unwrap();
        for dim in &cube.dims {
            let h1 = dim.attr_codes(0).unwrap();
            let h2 = dim.attr_codes(1).unwrap();
            let mut map = std::collections::HashMap::new();
            for (a, b) in h1.iter().zip(h2) {
                assert_eq!(
                    *map.entry(*a).or_insert(*b),
                    *b,
                    "h1 {a} maps to two h2 values"
                );
            }
        }
    }

    #[test]
    fn paper_dataset_parameters() {
        let d1 = CubeSpec::dataset1(1000);
        assert_eq!(d1.total_cells(), 64_000_000);
        assert!((d1.density() - 0.01).abs() < 1e-9);
        assert!((CubeSpec::dataset1(100).density() - 0.10).abs() < 1e-9);
        assert!((CubeSpec::dataset1(50).density() - 0.20).abs() < 1e-9);
        let d2 = CubeSpec::dataset2(0.005);
        assert_eq!(d2.valid_cells, 32_000);
    }

    #[test]
    fn selection_cardinality_override() {
        let spec = CubeSpec::dataset2(0.01).with_selection_cardinality(8);
        for levels in &spec.level_cards {
            assert_eq!(*levels.last().unwrap(), 8);
        }
        let cube = generate(
            &CubeSpec {
                dim_sizes: vec![16, 16],
                level_cards: vec![vec![4], vec![4]],
                valid_cells: 50,
                seed: 7,
                n_measures: 1,
                independent_last_level: false,
                layout: AttrLayout::Scattered,
            }
            .with_selection_cardinality(8),
        )
        .unwrap();
        // Selection level is the last: exactly 2 rows per value (16/8).
        let codes = cube.dims[0].attr_codes(1).unwrap();
        for v in 0..8i64 {
            assert_eq!(codes.iter().filter(|&&c| c == v).count(), 2);
        }
    }

    #[test]
    fn blocked_layout_is_contiguous_and_uniform() {
        let spec = CubeSpec {
            dim_sizes: vec![40],
            level_cards: vec![vec![4, 2]],
            valid_cells: 10,
            seed: 3,
            n_measures: 1,
            independent_last_level: false,
            layout: AttrLayout::Blocked,
        };
        let cube = generate(&spec).unwrap();
        let h1 = cube.dims[0].attr_codes(0).unwrap();
        // Contiguous blocks of 10 rows per value: 0...0 1...1 2...2 3...3.
        for (row, &v) in h1.iter().enumerate() {
            assert_eq!(v, row as i64 / 10, "row {row}");
        }
        // h2 derived hierarchically: 2 h1-values per h2-value.
        let h2 = cube.dims[0].attr_codes(1).unwrap();
        for (a, b) in h1.iter().zip(h2) {
            assert_eq!(*b, a / 2);
        }
    }

    #[test]
    fn blocked_selection_attribute_comes_from_key() {
        // Selection cardinality 8 > h1 cardinality 4: in blocked layout
        // the attribute is key-derived blocks, still exactly uniform.
        let spec = CubeSpec {
            dim_sizes: vec![40],
            level_cards: vec![vec![4]],
            valid_cells: 10,
            seed: 3,
            n_measures: 1,
            independent_last_level: false,
            layout: AttrLayout::Blocked,
        }
        .with_selection_cardinality(8);
        let cube = generate(&spec).unwrap();
        let sel = cube.dims[0].attr_codes(1).unwrap();
        for v in 0..8i64 {
            assert_eq!(sel.iter().filter(|&&c| c == v).count(), 5, "value {v}");
        }
        // Contiguous: rows 0..5 -> 0, 5..10 -> 1, ...
        assert!(sel.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn selection_sweep_shape() {
        let spec = CubeSpec::selection_sweep(640, 64);
        assert_eq!(spec.dim_sizes, vec![640, 64]);
        assert_eq!(spec.valid_cells, 640 * 64 / 8);
        let cube = generate(&spec).unwrap();
        // Blocked layout: 10 contiguous rows per attribute value.
        let codes = cube.dims[0].attr_codes(0).unwrap();
        for (row, &v) in codes.iter().enumerate() {
            assert_eq!(v, row as i64 / 10, "row {row}");
        }
    }

    #[test]
    fn paper_datasets_default_to_blocked() {
        assert_eq!(CubeSpec::dataset1(100).layout, AttrLayout::Blocked);
        assert_eq!(CubeSpec::dataset2(0.01).layout, AttrLayout::Blocked);
    }

    #[test]
    fn labels_attached() {
        let cube = generate(&small_spec()).unwrap();
        assert_eq!(cube.dims[0].label(0, 0), "AA0");
        assert_eq!(cube.dims[0].label(1, 1), "AB1");
        assert_eq!(cube.dims[0].code_of_label(0, "AA3"), Some(3));
    }

    #[test]
    fn build_olap_selects_the_chunk_codec() {
        use molap_storage::MemDisk;
        let cube = generate(&small_spec()).unwrap();
        let q = molap_core::Query::new(vec![
            molap_core::DimGrouping::Level(0),
            molap_core::DimGrouping::Drop,
            molap_core::DimGrouping::Drop,
        ]);
        let mut results = Vec::new();
        for format in [
            ChunkFormat::ChunkOffset,
            ChunkFormat::Dense,
            ChunkFormat::DiffSeq,
        ] {
            let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 1024));
            let adt = cube.build_olap(pool, &[5, 4, 3], format).unwrap();
            assert_eq!(adt.array().format(), format);
            results.push(adt.consolidate(&q).unwrap());
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn full_density_cube() {
        let spec = CubeSpec {
            dim_sizes: vec![4, 4],
            level_cards: vec![vec![2], vec![2]],
            valid_cells: 16,
            seed: 1,
            n_measures: 2,
            independent_last_level: false,
            layout: AttrLayout::Scattered,
        };
        let cube = generate(&spec).unwrap();
        assert_eq!(cube.len(), 16);
        assert!(cube.cells.iter().all(|(_, m)| m.len() == 2));
    }
}
