//! Corpus proof: every rule fires on the known-bad snippets under
//! `tests/corpus/`, respects `lint:allow` escape hatches, and produces
//! nothing beyond what the snippets annotate.
//!
//! Expected findings are `//~ <rule>` trailing annotations in the
//! corpus files themselves (comma-separated for several findings on
//! one line), so the corpus stays self-describing. The comparison is
//! exact in both directions: an annotated line that does not fire
//! fails the test, and so does any unannotated finding.

use std::collections::BTreeSet;
use std::path::Path;

type Key = (String, usize, String);

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn expected_findings() -> BTreeSet<Key> {
    let mut expected = BTreeSet::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus dir readable") {
        let path = entry.expect("dir entry").path();
        let is_rs = path.extension() == Some(std::ffi::OsStr::new("rs"));
        let is_md = path.extension() == Some(std::ffi::OsStr::new("md"));
        if !is_rs && !is_md {
            continue;
        }
        let raw = std::fs::read_to_string(&path).expect("corpus file readable");
        // Markdown corpus files (doc-drift) are linted under their own
        // file name; rust snippets remap via `//@ path:`.
        let vpath = if is_md {
            path.file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned()
        } else {
            raw.lines()
                .next()
                .and_then(|l| l.strip_prefix("//@ path:"))
                .map(str::trim)
                .unwrap_or_else(|| panic!("{} lacks a //@ path: directive", path.display()))
                .to_string()
        };
        for (idx, line) in raw.lines().enumerate() {
            if let Some(at) = line.find("//~") {
                for rule in line[at + 3..].split(',') {
                    expected.insert((vpath.clone(), idx + 1, rule.trim().to_string()));
                }
            }
        }
    }
    // The missing-forbid finding anchors on line 1 of its crate root,
    // which is the `//@ path:` directive line and cannot carry a
    // trailing annotation without corrupting the remapped path.
    expected.insert((
        "crates/demo/src/lib.rs".into(),
        1,
        "unsafe-inventory".into(),
    ));
    expected
}

#[test]
fn every_rule_fires_and_respects_allows() {
    let findings = molap_lint::lint_workspace(&corpus_dir()).expect("corpus lints");
    let actual: BTreeSet<Key> = findings
        .iter()
        .map(|f| (f.path.clone(), f.line, f.rule.clone()))
        .collect();
    assert_eq!(
        actual.len(),
        findings.len(),
        "two findings collapsed onto one (path, line, rule) key"
    );

    let expected = expected_findings();
    for e in &expected {
        assert!(
            actual.contains(e),
            "annotated finding did not fire: {e:?}\nactual findings:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    for a in &actual {
        assert!(
            expected.contains(a),
            "unannotated finding fired: {a:?} — either fix the corpus or annotate it"
        );
    }

    // Every rule family is exercised by at least one expected finding.
    for rule in [
        "panic-freedom",
        "wire-spec",
        "lock-io",
        "lock-order",
        "lock-blocking",
        "olc-io",
        "protocol-order",
        "doc-drift",
        "unsafe-inventory",
        "lint-pragma",
    ] {
        assert!(
            expected.iter().any(|(_, _, r)| r == rule),
            "corpus exercises no `{rule}` finding"
        );
    }
}

#[test]
fn interprocedural_findings_require_propagation() {
    // Bidirectional proof of the engine upgrade: every lock finding in
    // `bad_interproc.rs` sits at a *callsite* whose effect lives one
    // call deep, so the old intraprocedural pass must miss all of them
    // (this test), while the default pass finds every one
    // (`every_rule_fires_and_respects_allows`).
    let report = molap_lint::lint_workspace_with(
        &corpus_dir(),
        &molap_lint::Options {
            interprocedural: false,
        },
    )
    .expect("corpus lints");
    let interproc_path = "crates/server/src/corpus_interproc.rs";
    let missed: Vec<_> = report
        .findings
        .iter()
        .filter(|f| {
            f.path == interproc_path
                && matches!(f.rule.as_str(), "lock-order" | "lock-io" | "lock-blocking")
        })
        .collect();
    assert!(
        missed.is_empty(),
        "intraprocedural pass unexpectedly found cross-function cases:\n{}",
        missed
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the run still sees the file at all (its stale pragma
    // does not depend on propagation), so the emptiness above is not
    // an artifact of the file being skipped.
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.path == interproc_path && f.rule == "lint-pragma"),
        "corpus_interproc.rs was not linted at all"
    );
    // Same-line findings never needed the call graph: they must
    // survive with propagation off.
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.path == "crates/server/src/corpus_lock.rs" && f.rule == "lock-blocking"),
        "direct lock-blocking finding should not depend on propagation"
    );
}

#[test]
fn json_report_shape() {
    // The CLI's --json document is assembled from these parts; pin the
    // pieces that scripts/verify.sh greps for.
    let report = molap_lint::lint_workspace_with(&corpus_dir(), &molap_lint::Options::default())
        .expect("corpus lints");
    assert!(report.stats.functions > 0, "call graph saw no functions");
    assert!(report.stats.edges > 0, "call graph saw no edges");
    assert!(
        report.stats.fixpoint_iterations > 0,
        "fixpoint never iterated"
    );
    let counts = molap_lint::rule_counts(&report.findings);
    assert!(counts.get("lock-order").copied().unwrap_or(0) > 0);

    // Determinism: linting the same tree twice yields byte-identical
    // findings in the same order.
    let again = molap_lint::lint_workspace_with(&corpus_dir(), &molap_lint::Options::default())
        .expect("corpus lints");
    assert_eq!(
        report.findings, again.findings,
        "findings are not deterministic"
    );
    let sorted: Vec<_> = {
        let mut v = report.findings.clone();
        v.sort();
        v
    };
    assert_eq!(report.findings, sorted, "findings are not stable-sorted");
}

#[test]
fn findings_render_for_humans_and_machines() {
    let findings = molap_lint::lint_workspace(&corpus_dir()).expect("corpus lints");
    let unwrap_finding = findings
        .iter()
        .find(|f| f.path == "crates/core/src/corpus_panic.rs" && f.rule == "panic-freedom")
        .expect("corpus has a panic-freedom finding");
    let text = unwrap_finding.to_string();
    assert!(
        text.starts_with("crates/core/src/corpus_panic.rs:"),
        "Display leads with path:line, got {text}"
    );
    assert!(text.contains("[panic-freedom]"));
    let json = unwrap_finding.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"rule\":\"panic-freedom\""));
}

#[test]
fn real_workspace_tree_is_clean() {
    // The corpus lives inside the workspace; `lint_workspace` must
    // skip it (and `target/`) while still walking everything else, and
    // the committed tree itself must carry zero findings.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = molap_lint::lint_workspace(&root).expect("workspace lints");
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
