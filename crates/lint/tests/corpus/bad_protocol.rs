//@ path: crates/core/src/corpus_protocol.rs
//! Corpus: commit-protocol ordering violations. The spec table below
//! scopes the `protocol-order` rule to this file only, mirroring the
//! real table in `crates/core/src/write.rs`.
//!
//! # Commit protocol spec
//!
//! | role | token |
//! |------|-------|
//! | scope | `crates/core/src/corpus_protocol.rs` |
//! | checkpoint-fn | `checkpoint` |
//! | publish-fn | `publish` |
//! | primitive | `publish` |
//! | ack-marker | `Response::WriteAck` |

pub struct Store;

pub enum Response {
    WriteAck { cells: usize },
}

impl Store {
    pub fn checkpoint(&self) -> Result<(), ()> {
        Ok(())
    }

    pub fn publish(&self) -> usize {
        1
    }

    /// Checkpoint dominates the publish: protocol-complete, clean.
    pub fn good_commit(&self) -> Result<usize, ()> {
        self.checkpoint()?;
        Ok(self.publish())
    }

    /// Publishes before any durable checkpoint on the path.
    pub fn bad_commit(&self) -> Result<usize, ()> {
        let n = self.publish(); //~ protocol-order
        self.checkpoint()?;
        Ok(n)
    }

    /// Builds the client ack before the checkpoint: a crash after the
    /// reply would forget an acknowledged write.
    pub fn bad_ack(&self) -> Result<Response, ()> {
        let ack = Response::WriteAck { cells: 1 }; //~ protocol-order
        self.checkpoint()?;
        self.publish();
        Ok(ack)
    }
}
