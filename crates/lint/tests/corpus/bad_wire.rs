//@ path: crates/server/src/protocol.rs
//! Corpus: a protocol module whose doc-table spec drifts from the
//! code. Lines carrying a tilde annotation must produce exactly that finding.
//!
//! # Request frames
//!
//! | tag | name | payload |
//! |-----|------|---------|
//! | 0x01 | `Query` | `sql: str` |
//! | 0x02 | `Ping` | empty | //~ wire-spec
//!
//! # Response frames
//!
//! | tag | name | payload |
//! |-----|------|---------|
//! | 0x81 | `Pong` | empty |
//!
//! # Error codes
//!
//! | code | name | meaning |
//! |------|------|---------|
//! | 1 | `BAD_QUERY` | malformed query |
//! | 2 | `INTERNAL` | invariant violated | //~ wire-spec
//! | 3 | `GONE` | never produced | //~ wire-spec

pub const REQ_QUERY: u8 = 0x01;
pub const RESP_RESULT: u8 = 0x81; //~ wire-spec
pub const RESP_EXTRA: u8 = 0x99; //~ wire-spec
pub const RESP_DEBUG: u8 = 0xFE; // lint:allow(wire-spec): internal-only debugging tag, not part of the public spec

pub enum Request {
    Query { sql: String },
}

pub enum ErrorCode {
    BadQuery,
    Internal,
    Shutdown,
}

impl Request {
    pub fn emit(&self, buf: &mut Vec<u8>) {
        match self {
            Request::Query { sql } => { //~ wire-spec
                put_u32(buf, sql.len() as u32);
            }
        }
    }
}

impl ErrorCode {
    pub fn to_u16(&self) -> u16 {
        match self {
            ErrorCode::BadQuery => 1,
            ErrorCode::Internal => 2,
            ErrorCode::Shutdown => 7, //~ wire-spec
        }
    }

    pub fn wire_name(&self) -> &'static str {
        match self {
            ErrorCode::BadQuery => "BAD_QUERY",
            ErrorCode::Internal => "OOPS",
            ErrorCode::Shutdown => "SHUTDOWN",
        }
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
