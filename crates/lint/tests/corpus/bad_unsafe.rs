//@ path: crates/storage/src/corpus_unsafe.rs
//! Corpus: unsafe-inventory violations. Lines carrying a tilde annotation
//! must produce exactly that finding.

pub fn missing_safety(p: *const u8) -> u8 {
    unsafe { *p } //~ unsafe-inventory
}

pub fn with_safety(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for one byte.
    unsafe { *p }
}

pub fn allowed_unsafe(p: *const u8) -> u8 {
    // lint:allow(unsafe-inventory): corpus demonstrates the escape hatch
    unsafe { *p }
}
