//@ path: crates/storage/src/corpus_unsafe.rs
//! Corpus: unsafe-inventory violations. Lines carrying a tilde annotation
//! must produce exactly that finding.

pub fn missing_safety(p: *const u8) -> u8 {
    unsafe { *p } //~ unsafe-inventory
}

pub fn with_safety(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for one byte.
    unsafe { *p }
}

/// The escape hatch: a reasoned allow suppresses the finding even
/// though no SAFETY justification is in sight. (These doc lines also
/// push the neighboring justification comment out of the lookback
/// window, so the pragma demonstrably earns its keep.)
pub fn allowed_unsafe(p: *const u8) -> u8 {
    // lint:allow(unsafe-inventory): corpus demonstrates the escape hatch
    unsafe { *p }
}
