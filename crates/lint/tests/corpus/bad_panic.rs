//@ path: crates/core/src/corpus_panic.rs
//! Corpus: panic paths the `panic-freedom` rule must flag. Lines
//! carrying a tilde annotation must produce exactly that finding.

pub fn unguarded(v: &[u32], i: usize) -> u32 {
    v[i] //~ panic-freedom
}

pub fn bad(v: &[u32], n: usize) -> u32 {
    let first = v.first().unwrap(); //~ panic-freedom
    let second = v.get(1).expect("has two"); //~ panic-freedom
    if n > 100 {
        panic!("too big"); //~ panic-freedom
    }
    match n {
        0 => unreachable!("zero handled"), //~ panic-freedom
        1 => todo!(), //~ panic-freedom
        2 => unimplemented!(), //~ panic-freedom
        _ => {}
    }
    first + second
}

pub fn guarded(v: &[u32], i: usize) -> u32 {
    if i < v.len() {
        v[i]
    } else {
        0
    }
}

pub fn allowed() -> u32 {
    // lint:allow(panic-freedom): corpus demonstrates a reasoned allow
    "42".parse::<u32>().unwrap()
}

pub fn reasonless_pragma_does_not_suppress() -> u32 {
    // lint:allow(panic-freedom) //~ lint-pragma
    "7".parse::<u32>().unwrap() //~ panic-freedom
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
