//@ path: crates/server/src/corpus_interproc.rs
//! Corpus: violations hidden one call deep. Every tilde-annotated case
//! in this file needs call-graph propagation to find — the
//! `interprocedural_findings_require_propagation` test asserts they
//! all vanish when propagation is turned off, proving the old
//! intraprocedural engine misses them.

use std::io::Write;
use std::sync::Mutex;

pub struct Shared {
    pub queue: Mutex<Vec<u32>>,
    pub sessions: Mutex<Vec<u32>>,
}

fn grab_queue(s: &Shared) -> usize {
    let g = s.queue.lock();
    g.len()
}

pub fn abba_through_helper(s: &Shared) -> usize {
    let _outer = s.sessions.lock();
    grab_queue(s) //~ lock-order
}

fn log_line(out: &mut std::net::TcpStream) {
    out.write_all(b"tick").ok();
}

pub fn io_one_call_deep(s: &Shared, out: &mut std::net::TcpStream) {
    let _g = s.queue.lock();
    log_line(out); //~ lock-io
}

fn wait_for_worker(worker: std::thread::JoinHandle<()>) {
    worker.join().ok();
}

pub fn blocking_one_call_deep(s: &Shared, worker: std::thread::JoinHandle<()>) {
    let _g = s.sessions.lock();
    wait_for_worker(worker); //~ lock-blocking
}

pub fn stale_allow(s: &Shared) -> usize {
    // lint:allow(lock-io): nothing below does I/O anymore — kept to prove stale detection //~ lint-pragma
    s.queue.lock().len()
}
