//@ path: crates/server/src/corpus_lock.rs
//! Corpus: lock-discipline violations. Lines carrying a tilde annotation must
//! produce exactly that finding.

use std::io::Write;
use std::sync::Mutex;

pub struct Shared {
    pub queue: Mutex<Vec<u32>>,
    pub sessions: Mutex<Vec<u32>>,
}

pub fn io_under_lock(s: &Shared, out: &mut std::net::TcpStream) {
    let guard = s.sessions.lock();
    out.write_all(b"hello").ok(); //~ lock-io
    drop(guard);
    out.flush().ok();
}

pub fn inverted_order(s: &Shared) {
    let outer = s.sessions.lock();
    let inner = s.queue.lock(); //~ lock-order
    drop(inner);
    drop(outer);
}

pub fn declared_order_is_fine(s: &Shared) {
    let outer = s.queue.lock();
    let inner = s.sessions.lock();
    drop(inner);
    drop(outer);
}

pub fn allowed_io(s: &Shared, out: &mut std::net::TcpStream) {
    let guard = s.queue.lock();
    // lint:allow(lock-io): corpus shows a reasoned allow suppresses the finding
    out.write_all(b"x").ok();
    drop(guard);
}

pub fn join_under_lock(s: &Shared, worker: std::thread::JoinHandle<()>) {
    let _g = s.sessions.lock();
    worker.join().ok(); //~ lock-blocking
}

pub fn recv_under_lock(s: &Shared, rx: &std::sync::mpsc::Receiver<u32>) {
    let _g = s.queue.lock();
    rx.recv().ok(); //~ lock-blocking
}

pub fn waived_wait_is_fine(s: &Shared, cv: &std::sync::Condvar) {
    // The waited-on guard itself is exempt: the wait releases it.
    let mut q = s.queue.lock();
    while q.is_empty() {
        cv.wait(&mut q);
    }
}
