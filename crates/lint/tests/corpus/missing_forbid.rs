//@ path: crates/demo/src/lib.rs
//! Corpus: a crate root for an unsafe-free package that is missing
//! `#![forbid(unsafe_code)]`. The finding anchors at line 1, where
//! the path directive sits, so the integration test asserts it
//! explicitly rather than via a tilde annotation.

pub fn noop() {}
