//@ path: crates/storage/src/corpus_olc.rs
//! Corpus: optimistic-concurrency misuse. The version-word idiom gives
//! the lint three new things to catch: I/O inside an optimistic read
//! span (`olc-io`), escalation that inverts the declared order while
//! still holding the version word's exclusive side (`lock-order`), and
//! a pragma that claims to excuse an `olc-io` which no longer exists
//! (`lint-pragma`).

use std::io::Write;
use std::sync::Mutex;

use crate::olc::OptLock;

pub struct Shard {
    pub chunks: Mutex<Vec<u32>>,
    pub chunks_v: OptLock,
    pub tree_v: [OptLock; 4],
}

/// The escalation anti-pattern: after too many conflicts the reader
/// grabs the shard mutex *while still holding the version word's
/// exclusive side* — the writer path takes `chunks` before `chunks_v`,
/// so this deadlocks ABBA against every writer. Escalation must drop
/// the version guard first (or never hold one, like the B-tree probe).
pub fn escalate_while_holding_version(s: &Shard) -> usize {
    let _v = s.chunks_v.lock_exclusive();
    let g = s.chunks.lock(); //~ lock-order
    g.len()
}

/// I/O inside the restart loop: the span's reads are provisional until
/// validation, so the write may act on torn bytes and repeats on every
/// restart of the retry loop.
pub fn log_inside_span(s: &Shard, out: &mut std::net::TcpStream) {
    let Some(guard) = s.chunks_v.begin_optimistic() else {
        return;
    };
    out.write_all(b"probe").ok(); //~ olc-io
    let _ = guard.validate();
}

/// Same bug one call deep, behind an indexed receiver: the span opens
/// on a `tree_v` stripe and the helper's I/O effect propagates back to
/// the callsite inside it.
pub fn log_under_striped_span(s: &Shard, out: &mut std::net::TcpStream) {
    let Some(_guard) = s.tree_v[0].begin_optimistic() else {
        return;
    };
    tick(out); //~ olc-io
}

fn tick(out: &mut std::net::TcpStream) {
    out.write_all(b"tick").ok();
}

/// A pinned version number (guard confirmed and dropped within its
/// statement) is the *correct* deferred-I/O idiom: nothing fires.
pub fn pin_then_io_is_fine(s: &Shard, out: &mut std::net::TcpStream) -> Option<()> {
    let seen = s.chunks_v.begin_optimistic()?.confirm()?;
    out.write_all(b"fetched").ok();
    if s.chunks_v.still_valid(seen) {
        Some(())
    } else {
        None
    }
}

/// The span here closes before the I/O runs, so the pragma below
/// excuses nothing — the stale claim is itself the finding.
pub fn stale_olc_allow(s: &Shard, out: &mut std::net::TcpStream) {
    if let Some(guard) = s.chunks_v.begin_optimistic() {
        let _ = guard.validate();
    }
    // lint:allow(olc-io): nothing below runs inside a span anymore — kept to prove stale detection //~ lint-pragma
    out.write_all(b"done").ok();
}
