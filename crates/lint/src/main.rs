//! `molap-lint` CLI.
//!
//! ```text
//! molap-lint --check <root> [--json]
//! ```
//!
//! Lints every `.rs` file (plus `DESIGN.md`) under `<root>` (skipping
//! `target/`, `.git/`, and lint corpus directories) and prints findings
//! as `path:line: [rule] message`. With `--json` it prints one JSON
//! document with the findings (stable-sorted by path, line, rule, so
//! diffs are reproducible), per-rule counts, call-graph statistics
//! (functions, edges, fixpoint iterations), and wall time:
//!
//! ```text
//! {"findings":[…],"counts":{"lock-io":2},
//!  "callgraph":{"functions":310,"edges":612,"fixpoint_iterations":4},
//!  "wall_ms":18}
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut expect_root = false;
    for arg in &args {
        match arg.as_str() {
            "--check" => expect_root = true,
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: molap-lint --check <root> [--json]");
                return ExitCode::SUCCESS;
            }
            other if expect_root => {
                root = Some(PathBuf::from(other));
                expect_root = false;
            }
            other => {
                eprintln!("molap-lint: unexpected argument {other:?}");
                eprintln!("usage: molap-lint --check <root> [--json]");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root else {
        eprintln!("usage: molap-lint --check <root> [--json]");
        return ExitCode::from(2);
    };

    let started = Instant::now();
    let report = match molap_lint::lint_workspace_with(&root, &molap_lint::Options::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("molap-lint: cannot read {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let wall_ms = started.elapsed().as_millis();
    let findings = &report.findings;

    if json {
        let objects: Vec<String> = findings.iter().map(|f| f.to_json()).collect();
        let counts: Vec<String> = molap_lint::rule_counts(findings)
            .iter()
            .map(|(rule, n)| format!("\"{rule}\":{n}"))
            .collect();
        println!(
            "{{\"findings\":[{}],\"counts\":{{{}}},\"callgraph\":{{\"functions\":{},\
             \"edges\":{},\"fixpoint_iterations\":{}}},\"wall_ms\":{}}}",
            objects.join(","),
            counts.join(","),
            report.stats.functions,
            report.stats.edges,
            report.stats.fixpoint_iterations,
            wall_ms
        );
    } else {
        for finding in findings {
            println!("{finding}");
        }
    }
    let s = report.stats;
    if findings.is_empty() {
        eprintln!(
            "molap-lint: clean ({} fns, {} edges, {} fixpoint iters, {wall_ms} ms)",
            s.functions, s.edges, s.fixpoint_iterations
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "molap-lint: {} finding(s) ({} fns, {} edges, {} fixpoint iters, {wall_ms} ms)",
            findings.len(),
            s.functions,
            s.edges,
            s.fixpoint_iterations
        );
        ExitCode::FAILURE
    }
}
