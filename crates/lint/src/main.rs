//! `molap-lint` CLI.
//!
//! ```text
//! molap-lint --check <root> [--json]
//! ```
//!
//! Lints every `.rs` file under `<root>` (skipping `target/`, `.git/`,
//! and lint corpus directories) and prints findings as
//! `path:line: [rule] message`, or as one JSON object per line with
//! `--json`. Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut expect_root = false;
    for arg in &args {
        match arg.as_str() {
            "--check" => expect_root = true,
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: molap-lint --check <root> [--json]");
                return ExitCode::SUCCESS;
            }
            other if expect_root => {
                root = Some(PathBuf::from(other));
                expect_root = false;
            }
            other => {
                eprintln!("molap-lint: unexpected argument {other:?}");
                eprintln!("usage: molap-lint --check <root> [--json]");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = root else {
        eprintln!("usage: molap-lint --check <root> [--json]");
        return ExitCode::from(2);
    };

    let findings = match molap_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("molap-lint: cannot read {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for finding in &findings {
        if json {
            println!("{}", finding.to_json());
        } else {
            println!("{finding}");
        }
    }
    if findings.is_empty() {
        eprintln!("molap-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("molap-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
