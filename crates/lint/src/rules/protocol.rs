//! `protocol-order` — static enforcement of the durable commit
//! protocol from DESIGN.md §9: *durability strictly precedes
//! visibility*. On any path that reaches a publish (making staged
//! writes visible to readers), a durable checkpoint effect (WAL sync +
//! truncate) must dominate it, and no client acknowledgment may be
//! constructed before the checkpoint — otherwise a crash between ack
//! and sync forgets a write the client was told succeeded.
//!
//! The rule is configured by a module-doc table, the same pattern
//! `wire-spec` uses, so the protocol vocabulary lives next to the code
//! it describes (in `crates/core/src/write.rs`):
//!
//! ```text
//! //! # Commit protocol spec
//! //!
//! //! | role | token |
//! //! |------|-------|
//! //! | scope | `crates/core/src/write.rs` |
//! //! | checkpoint-fn | `checkpoint` |
//! //! | publish-fn | `publish_writes` |
//! //! | primitive | `publish_writes` |
//! //! | ack-marker | `Response::WriteAck` |
//! ```
//!
//! Roles:
//! * `scope` — exact file paths whose functions the rule checks.
//! * `checkpoint-fn` — a call with this name is a durable checkpoint
//!   effect; so is a call to any function whose propagated summary
//!   carries [`Effect::Checkpoint`].
//! * `publish-fn` — a call with this name is a publish effect; a
//!   function *named* this is treated as the publish implementation.
//! * `primitive` — functions (by name) that implement one protocol
//!   step and are therefore exempt from the whole-protocol check; a
//!   primitive's *callers* must still bracket it correctly.
//! * `ack-marker` — a token whose appearance on a line constructs a
//!   client-visible success response.
//!
//! Detection is a two-phase computation that stays monotone (so the
//! fixpoint terminates): phase 1 is the model's ordinary effect
//! propagation, which fixes every function's `Checkpoint` effect set;
//! phase 2 then computes *publish exposure* — a function is exposed
//! when, walking its body in line order, a publish effect (direct
//! `publish-fn` call or call to an exposed callee) appears before any
//! checkpoint effect. Exposure only ever grows given the fixed
//! checkpoint sets. A protocol-complete callee (checkpoint internally
//! precedes its publish) is *not* exposed and contributes a checkpoint
//! effect at its callsite instead.

use std::collections::BTreeSet;

use crate::model::{Effect, Model};
use crate::Finding;

/// Parsed `# Commit protocol spec` module-doc table(s).
pub struct ProtocolSpec {
    pub scope: BTreeSet<String>,
    pub checkpoint_fns: BTreeSet<String>,
    pub publish_fns: BTreeSet<String>,
    pub primitives: BTreeSet<String>,
    pub ack_markers: Vec<String>,
}

/// Scans every file's comments for `# Commit protocol spec` tables and
/// merges them. Returns `None` when no spec exists (the rule is then
/// inert — corpus runs without a spec file stay clean).
pub fn parse_spec(files: &[crate::source::SourceFile]) -> Option<ProtocolSpec> {
    let mut spec = ProtocolSpec {
        scope: BTreeSet::new(),
        checkpoint_fns: BTreeSet::new(),
        publish_fns: BTreeSet::new(),
        primitives: BTreeSet::new(),
        ack_markers: Vec::new(),
    };
    let mut any = false;
    for file in files {
        if file.path.ends_with(".md") {
            continue;
        }
        let mut in_table = false;
        for comment in &file.comments {
            let text = comment
                .trim_start()
                .trim_start_matches('/')
                .trim_start_matches('!')
                .trim();
            if text.contains("# Commit protocol spec") {
                in_table = true;
                continue;
            }
            if !in_table {
                continue;
            }
            if text.starts_with("# ") {
                in_table = false; // next doc section
                continue;
            }
            if !text.starts_with('|') {
                continue;
            }
            let cells: Vec<&str> = text.split('|').map(str::trim).collect();
            if cells.len() < 3 {
                continue;
            }
            let role = cells[1];
            let token = cells[2].trim_matches('`').to_string();
            if role == "role" || role.starts_with('-') || token.is_empty() {
                continue;
            }
            any = true;
            match role {
                "scope" => {
                    spec.scope.insert(token);
                }
                "checkpoint-fn" => {
                    spec.checkpoint_fns.insert(token);
                }
                "publish-fn" => {
                    spec.publish_fns.insert(token);
                }
                "primitive" => {
                    spec.primitives.insert(token);
                }
                "ack-marker" if !spec.ack_markers.contains(&token) => {
                    spec.ack_markers.push(token);
                }
                _ => {}
            }
        }
    }
    any.then_some(spec)
}

/// Does this line carry a checkpoint effect: a direct `checkpoint-fn`
/// call, or a call to a function whose summary checkpoints.
fn checkpoint_event(model: &Model<'_>, spec: &ProtocolSpec, lf: &crate::model::LineFacts) -> bool {
    lf.calls.iter().any(|c| {
        spec.checkpoint_fns.contains(c)
            || model
                .callees(c)
                .iter()
                .any(|&j| model.units[j].summary.contains_key(&Effect::Checkpoint))
    })
}

pub fn check(model: &Model<'_>, spec: &ProtocolSpec, findings: &mut Vec<Finding>) {
    let n = model.units.len();
    // Phase 2: publish exposure, iterated to its own fixpoint over the
    // (already fixed) checkpoint effects. Seeds: the publish
    // implementations themselves.
    let mut exposed = vec![false; n];
    let mut exposed_at: Vec<Option<(usize, String)>> = vec![None; n];
    for (i, u) in model.units.iter().enumerate() {
        if spec.publish_fns.contains(&u.name) {
            exposed[i] = true;
        }
    }
    loop {
        let mut changed = false;
        for i in 0..n {
            if exposed[i] {
                continue;
            }
            let unit = &model.units[i];
            let mut checkpointed = false;
            for lf in &unit.lines {
                if checkpoint_event(model, spec, lf) {
                    checkpointed = true;
                }
                if checkpointed {
                    continue;
                }
                let publish_cause = lf.calls.iter().find(|c| {
                    spec.publish_fns.contains(*c) || model.callees(c).iter().any(|&j| exposed[j])
                });
                if let Some(cause) = publish_cause {
                    exposed[i] = true;
                    exposed_at[i] = Some((lf.line, cause.clone()));
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }

    for (i, unit) in model.units.iter().enumerate() {
        let file = &model.files[unit.file];
        if !spec.scope.contains(&file.path) || unit.spawn_unit {
            continue;
        }
        let primitive = spec.primitives.contains(&unit.name);

        // Publish not dominated by a checkpoint.
        if exposed[i] && !primitive {
            if let Some((line, cause)) = &exposed_at[i] {
                findings.push(Finding {
                    path: file.path.clone(),
                    line: *line,
                    rule: "protocol-order".into(),
                    message: format!(
                        "publish effect (`{cause}`) is not dominated by a durable checkpoint \
                         on this path; checkpoint before publishing (DESIGN.md §9: durability \
                         precedes visibility)"
                    ),
                });
            }
        }

        // Ack construction reachable before the first checkpoint.
        if primitive {
            continue;
        }
        let has_protocol = exposed[i]
            || unit.summary.contains_key(&Effect::Checkpoint)
            || unit.summary.contains_key(&Effect::Publish);
        if !has_protocol {
            continue;
        }
        let first_checkpoint = unit
            .lines
            .iter()
            .find(|lf| checkpoint_event(model, spec, lf))
            .map(|lf| lf.line)
            .unwrap_or(usize::MAX);
        let scrubbed = file.scrubbed_lines();
        for lf in &unit.lines {
            if lf.line >= first_checkpoint {
                break;
            }
            let Some(text) = scrubbed.get(lf.line - 1) else {
                continue;
            };
            for marker in &spec.ack_markers {
                if text.contains(marker.as_str()) {
                    findings.push(Finding {
                        path: file.path.clone(),
                        line: lf.line,
                        rule: "protocol-order".into(),
                        message: format!(
                            "ack (`{marker}`) constructed before the durable checkpoint; a \
                             crash after replying would forget an acknowledged write \
                             (DESIGN.md §9)"
                        ),
                    });
                }
            }
        }
    }
}
