//! `doc-drift` — cross-checks the DESIGN.md §8 lock table against
//! [`DECLARED_ORDER`](crate::rules::lock::DECLARED_ORDER), the same
//! doc-table pattern `wire-spec` uses for the protocol spec. The table
//! is the human contract (rank, lock, what it protects); the const is
//! what the `lock-order` rule and the runtime tracker enforce. If a
//! rank is added, renamed, or reordered in one place but not the
//! other, the lint fails instead of letting them diverge silently.
//!
//! Scope: files named `DESIGN.md`. The parser finds the first markdown
//! table whose header starts with `| rank | lock` and reads the first
//! two columns of each row; the row order must match `DECLARED_ORDER`
//! exactly and the rank column must count 1..=N.

use crate::rules::lock::DECLARED_ORDER;
use crate::source::SourceFile;
use crate::Finding;

fn in_scope(path: &str) -> bool {
    path == "DESIGN.md" || path.ends_with("/DESIGN.md")
}

pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !in_scope(&file.path) {
        return;
    }
    // Markdown, so work on the raw text, not the rust-lexed views.
    let lines: Vec<&str> = file.raw.lines().collect();
    let Some(header) = lines
        .iter()
        .position(|l| l.trim_start().starts_with("| rank | lock"))
    else {
        findings.push(Finding {
            path: file.path.clone(),
            line: 1,
            rule: "doc-drift".into(),
            message: format!(
                "no `| rank | lock …` table found; DESIGN.md must document all {} declared \
                 lock ranks",
                DECLARED_ORDER.len()
            ),
        });
        return;
    };

    let mut rows: Vec<(usize, String, String)> = Vec::new(); // (line, rank cell, lock name)
    for (off, l) in lines[header + 1..].iter().enumerate() {
        let t = l.trim_start();
        if !t.starts_with('|') {
            break;
        }
        let cells: Vec<&str> = t.split('|').map(str::trim).collect();
        if cells.len() < 3 || cells[1].starts_with('-') {
            continue; // separator row
        }
        rows.push((
            header + 1 + off + 1,
            cells[1].to_string(),
            cells[2].trim_matches('`').to_string(),
        ));
    }

    for (i, (line, rank_cell, lock)) in rows.iter().enumerate() {
        match DECLARED_ORDER.get(i) {
            Some(expected) => {
                if lock != expected {
                    findings.push(Finding {
                        path: file.path.clone(),
                        line: *line,
                        rule: "doc-drift".into(),
                        message: format!(
                            "lock table row {} names `{}` but `DECLARED_ORDER[{}]` is \
                             `{}`; the table and the const must agree",
                            i + 1,
                            lock,
                            i,
                            expected
                        ),
                    });
                }
                if rank_cell.parse::<usize>() != Ok(i + 1) {
                    findings.push(Finding {
                        path: file.path.clone(),
                        line: *line,
                        rule: "doc-drift".into(),
                        message: format!(
                            "lock table rank column says `{}` where row {} is expected",
                            rank_cell,
                            i + 1
                        ),
                    });
                }
            }
            None => {
                findings.push(Finding {
                    path: file.path.clone(),
                    line: *line,
                    rule: "doc-drift".into(),
                    message: format!(
                        "lock table lists `{}` beyond the {} ranks in `DECLARED_ORDER`",
                        lock,
                        DECLARED_ORDER.len()
                    ),
                });
            }
        }
    }
    if rows.len() < DECLARED_ORDER.len() {
        findings.push(Finding {
            path: file.path.clone(),
            line: header + 1,
            rule: "doc-drift".into(),
            message: format!(
                "lock table lists {} locks but `DECLARED_ORDER` declares {}; first missing: \
                 `{}`",
                rows.len(),
                DECLARED_ORDER.len(),
                DECLARED_ORDER[rows.len()]
            ),
        });
    }
}
