//! `unsafe-inventory`: every `unsafe` keyword must be justified by a
//! `// SAFETY:` comment within the few lines above it, and any
//! package with zero `unsafe` must declare `#![forbid(unsafe_code)]`
//! in its crate roots so unsafety cannot creep in unreviewed.

use crate::source::SourceFile;
use crate::Finding;

const RULE: &str = "unsafe-inventory";

/// How many lines above an `unsafe` may carry its SAFETY comment.
const SAFETY_WINDOW: usize = 6;

/// Per-file check: SAFETY comments on each `unsafe`.
pub fn check_file(file: &SourceFile, findings: &mut Vec<Finding>) {
    for (idx, line) in file.scrubbed_lines().iter().enumerate() {
        let Some(col) = find_unsafe(line) else {
            continue;
        };
        let _ = col;
        let from = idx.saturating_sub(SAFETY_WINDOW);
        let justified = file.comments[from..=idx]
            .iter()
            .any(|c| c.contains("SAFETY:"));
        if !justified {
            findings.push(Finding {
                path: file.path.clone(),
                line: idx + 1,
                rule: RULE.into(),
                message: "`unsafe` without a `// SAFETY:` comment explaining why the \
                          invariants hold"
                    .into(),
            });
        }
    }
}

/// `unsafe` as a standalone word on a scrubbed line.
fn find_unsafe(line: &str) -> Option<usize> {
    let mut from = 0usize;
    while let Some(rel) = line[from..].find("unsafe") {
        let at = from + rel;
        from = at + "unsafe".len();
        let before_ok = at == 0
            || !line.as_bytes()[at - 1].is_ascii_alphanumeric()
                && line.as_bytes()[at - 1] != b'_'
                && line.as_bytes()[at - 1] != b'('; // skip forbid(unsafe_code)
        let after = line.as_bytes().get(at + 6).copied().unwrap_or(b' ');
        let after_ok = !after.is_ascii_alphanumeric() && after != b'_';
        if before_ok && after_ok {
            return Some(at);
        }
    }
    None
}

/// Workspace check: packages without `unsafe` must carry
/// `#![forbid(unsafe_code)]` in every crate root.
pub fn check_packages(files: &[SourceFile], findings: &mut Vec<Finding>) {
    let mut packages: Vec<(&str, Vec<&SourceFile>)> = Vec::new();
    for file in files {
        let Some(pkg) = package_of(&file.path) else {
            continue;
        };
        match packages.iter_mut().find(|(p, _)| *p == pkg) {
            Some((_, members)) => members.push(file),
            None => packages.push((pkg, vec![file])),
        }
    }
    for (pkg, members) in packages {
        let has_unsafe = members
            .iter()
            .any(|f| f.scrubbed.lines().any(|l| find_unsafe(l).is_some()));
        if has_unsafe {
            continue;
        }
        for root in members.iter().filter(|f| is_crate_root(&f.path)) {
            if !root.code.contains("#![forbid(unsafe_code)]") {
                findings.push(Finding {
                    path: root.path.clone(),
                    line: 1,
                    rule: RULE.into(),
                    message: format!(
                        "package `{pkg}` has no unsafe code; add `#![forbid(unsafe_code)]` \
                         to this crate root"
                    ),
                });
            }
        }
    }
}

/// The package prefix of a source path: everything before `/src/`
/// (empty for the workspace-root package).
fn package_of(path: &str) -> Option<&str> {
    let at = path
        .find("/src/")
        .or_else(|| path.starts_with("src/").then_some(0))?;
    Some(&path[..at])
}

/// lib.rs, main.rs, and bin targets are crate roots; everything else
/// is a module of some root.
fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs")
        || path.ends_with("src/main.rs")
        || path
            .rsplit_once("src/bin/")
            .map(|(_, rest)| !rest.contains('/'))
            .unwrap_or(false)
}
