//! `wire-spec`: the protocol module's doc tables are the public spec
//! of the wire format. This rule parses them and cross-checks frame
//! tags, error codes, and payload field order against the actual
//! consts, enum arms, and encoder bodies, so the documented protocol
//! cannot drift from the implementation.

use crate::rules::ident_ending_at;
use crate::source::SourceFile;
use crate::Finding;

const RULE: &str = "wire-spec";

fn in_scope(path: &str) -> bool {
    path.ends_with("server/src/protocol.rs")
}

/// A `| 0xNN | Name | payload |` doc-table row.
struct TagRow {
    line: usize,
    value: u16,
    name: String,
    payload: String,
}

/// A `| N | `NAME` | meaning |` error-code row.
struct CodeRow {
    line: usize,
    code: u16,
    name: String,
}

/// Runs the rule over one file.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !in_scope(&file.path) {
        return;
    }
    let mut push = |line: usize, message: String| {
        findings.push(Finding {
            path: file.path.clone(),
            line,
            rule: RULE.into(),
            message,
        });
    };

    let (req_rows, resp_rows, code_rows) = parse_doc_tables(&file.raw);
    let consts = parse_consts(file);

    check_tags(&req_rows, &consts, "REQ_", "request", &mut push, file);
    check_tags(&resp_rows, &consts, "RESP_", "response", &mut push, file);
    check_error_codes(&code_rows, file, &mut push);
}

/// Parses the three spec tables out of `//!` module docs.
fn parse_doc_tables(raw: &str) -> (Vec<TagRow>, Vec<TagRow>, Vec<CodeRow>) {
    #[derive(PartialEq)]
    enum Section {
        None,
        Requests,
        Responses,
        Codes,
    }
    let mut section = Section::None;
    let mut requests = Vec::new();
    let mut responses = Vec::new();
    let mut codes = Vec::new();
    for (idx, line) in raw.lines().enumerate() {
        let Some(doc) = line.trim_start().strip_prefix("//!") else {
            continue;
        };
        let doc = doc.trim();
        if let Some(header) = doc.strip_prefix("# ") {
            section = if header.contains("Request frame") {
                Section::Requests
            } else if header.contains("Response frame") {
                Section::Responses
            } else if header.contains("Error code") {
                Section::Codes
            } else {
                Section::None
            };
            continue;
        }
        if section == Section::None || !doc.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = doc.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 || cells[0].starts_with('-') || cells[0].contains("--") {
            continue;
        }
        let first = cells[0].trim_matches('`');
        match section {
            Section::Requests | Section::Responses => {
                let Some(value) = parse_int(first) else {
                    continue;
                };
                let row = TagRow {
                    line: idx + 1,
                    value,
                    name: cells[1].trim_matches('`').to_string(),
                    payload: cells.get(2).copied().unwrap_or("").to_string(),
                };
                if section == Section::Requests {
                    requests.push(row);
                } else {
                    responses.push(row);
                }
            }
            Section::Codes => {
                let Some(code) = parse_int(first) else {
                    continue;
                };
                codes.push(CodeRow {
                    line: idx + 1,
                    code,
                    name: cells[1].trim_matches('`').to_string(),
                });
            }
            Section::None => {}
        }
    }
    (requests, responses, codes)
}

fn parse_int(s: &str) -> Option<u16> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        u16::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        s.parse().ok()
    }
}

struct Const {
    line: usize,
    name: String,
    value: u16,
}

/// Collects `const REQ_*`/`const RESP_*` tag declarations.
fn parse_consts(file: &SourceFile) -> Vec<Const> {
    let mut out = Vec::new();
    for (idx, line) in file.code.lines().enumerate() {
        let t = line.trim();
        let t = t.strip_prefix("pub ").unwrap_or(t);
        let t = t.strip_prefix("pub(crate) ").unwrap_or(t);
        let Some(rest) = t.strip_prefix("const ") else {
            continue;
        };
        let Some((name, rhs)) = rest.split_once(':') else {
            continue;
        };
        let name = name.trim();
        if !name.starts_with("REQ_") && !name.starts_with("RESP_") {
            continue;
        }
        let Some((_, value)) = rhs.split_once('=') else {
            continue;
        };
        let Some(value) = parse_int(value.trim().trim_end_matches(';')) else {
            continue;
        };
        out.push(Const {
            line: idx + 1,
            name: name.to_string(),
            value,
        });
    }
    out
}

/// Lowercase alphanumerics only: `RESP_OBJECT_LIST` → `objectlist`,
/// `ObjectList` → `objectlist`.
fn normalize(name: &str) -> String {
    name.chars()
        .filter(char::is_ascii_alphanumeric)
        .collect::<String>()
        .to_ascii_lowercase()
}

fn names_compatible(const_suffix: &str, doc_name: &str) -> bool {
    let a = normalize(const_suffix);
    let b = normalize(doc_name);
    a == b || (a.len() >= 3 && b.starts_with(&a)) || (b.len() >= 3 && a.starts_with(&b))
}

fn check_tags(
    rows: &[TagRow],
    consts: &[Const],
    prefix: &str,
    kind: &str,
    push: &mut impl FnMut(usize, String),
    file: &SourceFile,
) {
    let tagged: Vec<&Const> = consts
        .iter()
        .filter(|c| c.name.starts_with(prefix))
        .collect();
    for row in rows {
        match tagged.iter().find(|c| c.value == row.value) {
            None => push(
                row.line,
                format!(
                    "documented {kind} tag {:#04x} ({}) has no `const {prefix}*` with that value",
                    row.value, row.name
                ),
            ),
            Some(c) => {
                let suffix = c.name.trim_start_matches(prefix);
                if !names_compatible(suffix, &row.name) {
                    push(
                        c.line,
                        format!(
                            "const `{}` does not match the documented name `{}` for tag {:#04x}",
                            c.name, row.name, row.value
                        ),
                    );
                }
                check_field_order(row, c, kind, push, file);
            }
        }
    }
    for c in &tagged {
        if !rows.iter().any(|r| r.value == c.value) {
            push(
                c.line,
                format!(
                    "const `{}` = {:#04x} is not documented in the {kind} frame table",
                    c.name, c.value
                ),
            );
        }
    }
}

/// Field-order conformance: the documented payload field types must
/// appear, in order, as the leading `put_*` calls of the encode arm.
fn check_field_order(
    row: &TagRow,
    tag: &Const,
    kind: &str,
    push: &mut impl FnMut(usize, String),
    file: &SourceFile,
) {
    let expected = payload_kinds(&row.payload);
    let variant = format!(
        "{}::{}",
        if kind == "request" {
            "Request"
        } else {
            "Response"
        },
        normalize_to_variant(&row.name)
    );
    let Some((arm_line, arm_text)) = find_encode_arm(file, &variant) else {
        return;
    };
    if arm_text.contains("encode(") || arm_text.contains("encode_result(") {
        return; // delegated encodings are opaque to the scan
    }
    let actual = put_calls(&arm_text);
    if row.payload.trim() == "empty" && !actual.is_empty() {
        push(
            arm_line,
            format!("`{variant}` is documented as an empty payload but encodes fields"),
        );
        return;
    }
    // Every documented field kind must appear in order (extra puts in
    // between — e.g. per-element writes of a documented list — are
    // fine).
    let mut pos = 0usize;
    for kind_name in &expected {
        match actual[pos..].iter().position(|a| a == kind_name) {
            Some(p) => pos += p + 1,
            None => {
                push(
                    arm_line,
                    format!(
                        "`{variant}` encodes fields out of order: documented payload is `{}` \
                         but the arm's put-calls are [{}] (tag {:#04x}, const `{}`)",
                        row.payload,
                        actual.join(", "),
                        row.value,
                        tag.name
                    ),
                );
                return;
            }
        }
    }
}

/// `ObjectList` stays `ObjectList`; `StatsReply` → the enum variant
/// is found by prefix matching inside `find_encode_arm`.
fn normalize_to_variant(doc_name: &str) -> String {
    doc_name.trim().to_string()
}

/// Finds the encode match arm for `variant` (e.g. `Request::Query`):
/// a non-test line containing the variant path and `=>`. Returns the
/// arm's text through its closing brace (or the single line).
fn find_encode_arm(file: &SourceFile, variant: &str) -> Option<(usize, String)> {
    let lines = file.scrubbed_lines();
    // The doc name may be longer than the variant (`StatsReply` vs
    // `Stats`), so accept a variant path that is a prefix-compatible
    // match.
    let (enum_name, doc_variant) = variant.split_once("::")?;
    for (idx, line) in lines.iter().enumerate() {
        if file.is_test_line(idx + 1) || !line.contains("=>") {
            continue;
        }
        let Some(col) = line.find(&format!("{enum_name}::")) else {
            continue;
        };
        let after = &line[col + enum_name.len() + 2..];
        let arm_variant: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if arm_variant.is_empty() || !names_compatible(&arm_variant, doc_variant) {
            continue;
        }
        // Single-line arm or braced arm?
        let mut text = String::from(*line);
        if line.trim_end().ends_with('{') {
            let mut depth = 1i32;
            for l in lines.iter().skip(idx + 1) {
                text.push('\n');
                text.push_str(l);
                depth += l.matches('{').count() as i32 - l.matches('}').count() as i32;
                if depth <= 0 {
                    break;
                }
            }
        }
        return Some((idx + 1, text));
    }
    None
}

/// Maps a documented payload cell to the expected sequence of put
/// kinds: each backticked `field: type` item contributes its leading
/// primitive.
fn payload_kinds(payload: &str) -> Vec<String> {
    let mut kinds = Vec::new();
    let mut rest = payload;
    while let Some(start) = rest.find('`') {
        let after = &rest[start + 1..];
        let Some(end) = after.find('`') else { break };
        let item = &after[..end];
        rest = &after[end + 1..];
        // `name: type…` items drop the field name; items that *start*
        // with a type (`u32 count + …`) are scanned whole.
        let spec = match item.split_once(':') {
            Some((name, t)) if !name.contains(' ') && !name.contains('(') => t,
            _ => item,
        };
        if let Some(kind) = spec.split_whitespace().find_map(|tok| {
            let tok = tok.trim_matches(|c: char| !c.is_ascii_alphanumeric());
            match tok {
                "str" => Some("put_str"),
                "u16" => Some("put_u16"),
                "u32" => Some("put_u32"),
                "u64" => Some("put_u64"),
                "i64" => Some("put_i64"),
                _ => None,
            }
        }) {
            kinds.push(kind.to_string());
        }
    }
    kinds
}

/// The ordered `put_*` calls appearing in an arm's text.
fn put_calls(arm: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(rel) = arm[from..].find("put_") {
        let start = from + rel;
        let name_end = arm[start..]
            .find('(')
            .map(|p| start + p)
            .unwrap_or(arm.len());
        // Must be a call, not part of a longer identifier.
        let is_call = name_end < arm.len()
            && ident_ending_at(arm, start).is_empty()
            && arm[start..name_end]
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_');
        if is_call {
            out.push(arm[start..name_end].to_string());
        }
        from = start + 4;
    }
    out
}

/// Cross-checks the error-code table against `to_u16` and `Display`.
fn check_error_codes(rows: &[CodeRow], file: &SourceFile, push: &mut impl FnMut(usize, String)) {
    if rows.is_empty() {
        return;
    }
    // variant → numeric code, from `ErrorCode::X => N,` arms.
    let mut to_u16: Vec<(String, u16, usize)> = Vec::new();
    // variant → wire name, from `ErrorCode::X => "NAME",` arms.
    let mut display: Vec<(String, String)> = Vec::new();
    for (idx, line) in file.code.lines().enumerate() {
        let t = line.trim();
        let Some(rest) = t.strip_prefix("ErrorCode::") else {
            continue;
        };
        let Some((variant, rhs)) = rest.split_once("=>") else {
            continue;
        };
        let variant = variant.trim().to_string();
        let rhs = rhs.trim().trim_end_matches(',').trim();
        if let Some(name) = rhs.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
            display.push((variant, name.to_string()));
        } else if let Ok(n) = rhs.parse::<u16>() {
            to_u16.push((variant, n, idx + 1));
        }
    }
    if to_u16.is_empty() {
        return;
    }
    for row in rows {
        let Some((variant, _, _)) = to_u16.iter().find(|(_, n, _)| *n == row.code) else {
            push(
                row.line,
                format!(
                    "documented error code {} ({}) is not produced by `ErrorCode::to_u16`",
                    row.code, row.name
                ),
            );
            continue;
        };
        match display.iter().find(|(v, _)| v == variant) {
            Some((_, wire_name)) if *wire_name != row.name => push(
                row.line,
                format!(
                    "error code {} is documented as `{}` but `ErrorCode::{variant}` displays \
                     as `{wire_name}`",
                    row.code, row.name
                ),
            ),
            _ => {}
        }
    }
    for (variant, code, line) in &to_u16 {
        if !rows.iter().any(|r| r.code == *code) {
            push(
                *line,
                format!("`ErrorCode::{variant}` = {code} is missing from the error-code table"),
            );
        }
    }
}
