//! The rule implementations.

pub mod doc_drift;
pub mod lock;
pub mod panic_free;
pub mod protocol;
pub mod unsafe_inv;
pub mod wire_spec;

use crate::source::SourceFile;
use crate::Finding;

/// Reports `lint:allow` pragmas that are missing the mandatory
/// `: <reason>` suffix — they do not suppress anything, so a silent
/// typo would otherwise re-open the hole the pragma was masking.
pub fn pragma_hygiene(file: &SourceFile, findings: &mut Vec<Finding>) {
    for pragma in &file.pragmas {
        if !pragma.has_reason {
            findings.push(Finding {
                path: file.path.clone(),
                line: pragma.line,
                rule: "lint-pragma".into(),
                message: format!(
                    "lint:allow({}) needs a reason: `// lint:allow({}): <why>`",
                    pragma.rule, pragma.rule
                ),
            });
        }
    }
}

/// Longest identifier ending exactly at byte `end` of `line`.
pub(crate) fn ident_ending_at(line: &str, end: usize) -> &str {
    let bytes = line.as_bytes();
    let mut start = end;
    while start > 0 {
        let b = bytes[start - 1];
        if b.is_ascii_alphanumeric() || b == b'_' {
            start -= 1;
        } else {
            break;
        }
    }
    &line[start..end]
}
