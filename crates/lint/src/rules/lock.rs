//! Lock discipline, two rules:
//!
//! * `lock-io` — a lock guard held across file/socket I/O turns one
//!   slow disk or one stalled peer into a pile-up of blocked threads.
//!   Flagged lexically: a `let`/`for`/`match`/`if let` binding of
//!   `<field>.lock()`/`.read()`/`.write()` is considered live until
//!   its enclosing block closes (or an explicit `drop(<name>)`), and
//!   any I/O marker inside the live span is a finding. Deliberate
//!   latch-coupled write-back sites carry reasoned `lint:allow`
//!   pragmas.
//! * `lock-order` — acquisitions must respect [`DECLARED_ORDER`]
//!   (outermost first); acquiring an earlier-ranked lock while a
//!   later-ranked guard is live is an inversion that can deadlock
//!   against a thread locking in the declared order. The runtime
//!   counterpart is the `parking_lot` shim's `lock-order-tracking`
//!   feature.
//!
//! Scope: non-test code under `crates/*/src`.

use crate::rules::ident_ending_at;
use crate::source::SourceFile;
use crate::Finding;

/// The workspace's declared lock order, outermost (acquire first) to
/// innermost. Field names are unambiguous across the workspace:
/// `inflight`/`queue`/`sessions`/`supervisor` (server: coalescing
/// table, then admission queue), `commit` (array: the version table's
/// one-write-batch-at-a-time commit section, taken via
/// `VersionTable::commit_section` by the core write paths),
/// `catalog` (core), `generations` (result cache: per-array
/// write generations), `results` (result-cube cache shard), `chunks`
/// (decoded-chunk cache shard), `versions` (chunk version table:
/// pinned pre-images for snapshot reads), `dir`/`pack` (LOB store),
/// `state`/`data` (buffer pool: shard state, then per-frame latch),
/// `pages` (MemDisk backing store).
pub const DECLARED_ORDER: &[&str] = &[
    "inflight",
    "queue",
    "sessions",
    "supervisor",
    "commit",
    "catalog",
    "generations",
    "results",
    "delivery",
    "chunks",
    "versions",
    "dir",
    "pack",
    "state",
    "data",
    "pages",
];

const IO_MARKERS: &[&str] = &[
    ".write_all(",
    ".read_exact(",
    ".flush(",
    ".sync_all(",
    ".sync_data(",
    ".set_len(",
    ".shutdown(",
    ".accept()",
    "File::open",
    "File::create",
    "OpenOptions",
    "TcpStream::connect",
    "read_frame(",
    "write_frame(",
    ".write_page(",
    ".read_page(",
    ".read_pages(",
    ".log_page(",
    ".allocate_contiguous(",
    "std::fs::",
];

fn in_scope(path: &str) -> bool {
    path.starts_with("crates/") && path.contains("/src/")
}

/// A guard that is live at the current line.
struct LiveGuard {
    /// Lock field name (`queue`, `state`, …).
    lock: String,
    /// Binding name, when one exists, for `drop(name)` tracking.
    binding: Option<String>,
    /// 1-indexed acquisition line.
    line: usize,
    /// The guard dies when the brace depth drops below this.
    min_depth: i32,
}

/// Runs both lock rules over one file.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !in_scope(&file.path) {
        return;
    }
    let lines = file.scrubbed_lines();
    let mut depth = 0i32;
    let mut live: Vec<LiveGuard> = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        if file.is_test_line(lineno) {
            // Keep depth bookkeeping but skip analysis inside tests.
            depth += brace_delta(line);
            live.retain(|g| depth >= g.min_depth);
            continue;
        }

        let acquisitions = find_acquisitions(line);

        // lock-order: every acquisition is checked against guards
        // already live (including same-line earlier ones — handled by
        // insertion order below).
        for acq in &acquisitions {
            if let Some(new_rank) = rank(&acq.lock) {
                for g in &live {
                    if let Some(held_rank) = rank(&g.lock) {
                        if new_rank < held_rank {
                            findings.push(Finding {
                                path: file.path.clone(),
                                line: lineno,
                                rule: "lock-order".into(),
                                message: format!(
                                    "acquiring `{}` while holding `{}` (line {}) inverts the \
                                     declared lock order ({} before {})",
                                    acq.lock, g.lock, g.line, acq.lock, g.lock
                                ),
                            });
                        }
                    }
                }
            }
        }

        // lock-io: I/O markers while any guard is live. The guard may
        // also be acquired on this same line (`for … in x.lock()…`).
        let has_live_before = !live.is_empty();
        let acquired_holding = !acquisitions.iter().all(|a| a.temporary);
        if has_live_before || acquired_holding {
            for marker in IO_MARKERS {
                if line.contains(marker) {
                    let holder = live
                        .first()
                        .map(|g| format!("`{}` (line {})", g.lock, g.line))
                        .unwrap_or_else(|| {
                            acquisitions
                                .first()
                                .map(|a| format!("`{}` (this line)", a.lock))
                                .unwrap_or_default()
                        });
                    findings.push(Finding {
                        path: file.path.clone(),
                        line: lineno,
                        rule: "lock-io".into(),
                        message: format!(
                            "I/O call `{}` while lock guard {} is held; move the I/O outside \
                             the critical section",
                            marker.trim_matches(|c| c == '.' || c == '('),
                            holder
                        ),
                    });
                }
            }
        }

        // Update liveness *after* analysis: a temporary dies with its
        // statement, a held binding lives until its block closes.
        let delta = brace_delta(line);
        depth += delta;
        for acq in acquisitions {
            if !acq.temporary {
                live.push(LiveGuard {
                    lock: acq.lock,
                    binding: acq.binding,
                    line: lineno,
                    // A `for`/`match` header that opened a brace owns
                    // the guard for that block; a `let` owns it for
                    // the current block.
                    min_depth: depth,
                });
            }
        }
        // Explicit drops.
        if let Some(dropped) = dropped_binding(line) {
            live.retain(|g| g.binding.as_deref() != Some(dropped));
        }
        live.retain(|g| depth >= g.min_depth);
    }
}

fn rank(lock: &str) -> Option<usize> {
    DECLARED_ORDER.iter().position(|&l| l == lock)
}

struct Acquisition {
    lock: String,
    binding: Option<String>,
    /// Statement-temporary: the guard cannot outlive this line.
    temporary: bool,
}

/// Finds `<ident>.lock()` / `.read()` / `.write()` acquisitions on a
/// scrubbed line and classifies how long the guard lives.
fn find_acquisitions(line: &str) -> Vec<Acquisition> {
    let mut out = Vec::new();
    let trimmed = line.trim_start();
    let is_binding = trimmed.starts_with("let ")
        || trimmed.starts_with("if let ")
        || trimmed.starts_with("while let ");
    let is_header = trimmed.starts_with("for ")
        || trimmed.starts_with("match ")
        || line.contains("for (")
        || line.contains(" in ");
    for method in [".lock()", ".read()", ".write()"] {
        let mut from = 0usize;
        while let Some(rel) = line[from..].find(method) {
            let at = from + rel;
            from = at + method.len();
            let lock = ident_ending_at(line, at).to_string();
            if lock.is_empty() {
                continue;
            }
            let binding = if is_binding {
                binding_name(trimmed)
            } else {
                None
            };
            // `let _ = …` drops immediately; a bare expression
            // statement (`x.lock().insert(…)`) is a temporary unless
            // it is a `for`/`match` header, whose temporary lives for
            // the whole block.
            let temporary = if is_binding {
                binding.as_deref() == Some("_")
            } else {
                !is_header
            };
            out.push(Acquisition {
                lock,
                binding,
                temporary,
            });
        }
    }
    out
}

/// `let [mut] <name> = …` → the bound name, if it is a plain ident.
fn binding_name(trimmed: &str) -> Option<String> {
    let rest = trimmed
        .strip_prefix("let ")
        .or_else(|| trimmed.strip_prefix("if let "))
        .or_else(|| trimmed.strip_prefix("while let "))?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

fn dropped_binding(line: &str) -> Option<&str> {
    let at = line.find("drop(")?;
    let rest = &line[at + 5..];
    let end = rest.find(')')?;
    let name = rest[..end].trim();
    name.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_')
        .then_some(name)
}

fn brace_delta(line: &str) -> i32 {
    line.matches('{').count() as i32 - line.matches('}').count() as i32
}
