//! Lock discipline, three rules, all interprocedural since PR 7:
//!
//! * `lock-io` — a lock guard held across file/socket I/O turns one
//!   slow disk or one stalled peer into a pile-up of blocked threads.
//!   Flagged when an I/O marker sits inside a live guard span, *or*
//!   when a call made inside the span reaches I/O through any chain of
//!   callees (the finding prints the chain). Deliberate latch-coupled
//!   write-back sites carry reasoned `lint:allow` pragmas, which also
//!   stop the effect from propagating to callers.
//! * `lock-order` — acquisitions must respect [`DECLARED_ORDER`]
//!   (outermost first); acquiring an earlier-ranked lock while a
//!   later-ranked guard is live — directly or through a callee — is an
//!   inversion that can deadlock against a thread locking in the
//!   declared order. The runtime counterpart is the `parking_lot`
//!   shim's `lock-order-tracking` feature.
//! * `lock-blocking` — parking the thread (condvar wait, join, channel
//!   recv) while any guard is held stalls every waiter on that lock;
//!   worse, the wakeup path may need the held lock. The one exemption
//!   is the guard handed to the wait itself (`cv.wait(&mut g)` releases
//!   `g` while parked). The runtime counterpart panics in the shim's
//!   `lock-order-tracking` feature.
//! * `olc-io` — file/socket I/O while an optimistic *read span* (a
//!   live `begin_optimistic` guard or an `optimistic_read` closure) is
//!   open. The span's reads are provisional until validation, so I/O
//!   inside it either acts on bytes that may be torn or repeats on
//!   every restart of the retry loop; do the I/O first and re-check
//!   the version with `still_valid`, the way the B-tree probe does.
//!   `.lock_exclusive()` on a version word needs no extra rule: it is
//!   an ordinary ranked acquisition (`Effect::AcquireOpt`) and the
//!   three rules above all apply to it.
//!
//! Guard liveness is lexical: a `let`/`for`/`match` binding of
//! `<field>.lock()`/`.read()`/`.write()` is live until its enclosing
//! block closes (or an explicit `drop(<name>)`); a guard immediately
//! method-chained (`m.lock().take()`) is statement-temporary. A call to
//! a function whose signature returns a `…Guard…` type and whose body
//! acquires a ranked lock (e.g. `VersionTable::commit_section`) makes
//! the caller's `let` binding a live guard on that lock.
//!
//! Scope: non-test code under `crates/*/src`.

use crate::model::{Effect, Model, Unit};
use crate::source::SourceFile;
use crate::Finding;

/// The workspace's declared lock order, outermost (acquire first) to
/// innermost. Field names are unambiguous across the workspace:
/// `inflight`/`queue`/`sessions`/`supervisor` (server: coalescing
/// table, then admission queue), `commit` (array: the version table's
/// one-write-batch-at-a-time commit section, taken via
/// `VersionTable::commit_section` by the core write paths),
/// `catalog` (core), `generations` (result cache: per-array
/// write generations), `results` (result-cube cache shard), `chunks`
/// (decoded-chunk cache shard), `versions` (chunk version table:
/// pinned pre-images for snapshot reads), `tree` (B-tree writer
/// mutex), `dir`/`pack` (LOB store), `state`/`data` (buffer pool:
/// shard state, then per-frame latch), `pages` (MemDisk backing
/// store).
///
/// The `*_v` names are the optimistic version words (exclusive side is
/// a spinlock, so it ranks like any lock): each sits directly after
/// the shard mutex whose structure it versions — except `state_v`,
/// which the pool's fault-in takes while the claimed frame latch
/// (`data`) is still held, so it must rank after `data` too. The
/// `*_slot` names are the caches' per-slot mirror mutexes, taken after
/// their version word by both the mutation paths and the optimistic
/// probes.
///
/// The DESIGN.md §8 lock table is cross-checked against this const by
/// the `doc-drift` rule; the two cannot silently diverge.
pub const DECLARED_ORDER: &[&str] = &[
    "inflight",
    "queue",
    "sessions",
    "supervisor",
    "commit",
    "catalog",
    "generations",
    "results",
    "results_v",
    "result_slot",
    "delivery",
    "chunks",
    "chunks_v",
    "chunk_slot",
    "versions",
    "tree",
    "tree_v",
    "dir",
    "pack",
    "state",
    "data",
    "state_v",
    "pages",
];

pub(crate) fn rank(lock: &str) -> Option<usize> {
    DECLARED_ORDER.iter().position(|&l| l == lock)
}

fn in_scope(path: &str) -> bool {
    path.starts_with("crates/") && path.contains("/src/")
}

/// A guard that is live at the current line.
struct LiveGuard {
    /// Lock field name (`queue`, `state`, …).
    lock: String,
    /// Binding name, when one exists, for `drop(name)` tracking.
    binding: Option<String>,
    /// 1-indexed acquisition line.
    line: usize,
    /// The guard dies when the brace depth drops below this.
    min_depth: i32,
}

/// Runs the lock rules over every unit of the model.
pub fn check_model(model: &Model<'_>, findings: &mut Vec<Finding>) {
    for unit in &model.units {
        let file = &model.files[unit.file];
        if !in_scope(&file.path) {
            continue;
        }
        check_unit(model, unit, file, findings);
    }
}

fn check_unit(model: &Model<'_>, unit: &Unit, file: &SourceFile, findings: &mut Vec<Finding>) {
    let mut depth = 0i32;
    let mut live: Vec<LiveGuard> = Vec::new();
    let mut live_opt: Vec<LiveGuard> = Vec::new();

    for lf in &unit.lines {
        let lineno = lf.line;

        // lock-order, direct: every acquisition is checked against
        // guards already live.
        for acq in &lf.acquisitions {
            if let Some(new_rank) = rank(&acq.lock) {
                for g in &live {
                    if let Some(held_rank) = rank(&g.lock) {
                        if new_rank < held_rank {
                            findings.push(Finding {
                                path: file.path.clone(),
                                line: lineno,
                                rule: "lock-order".into(),
                                message: format!(
                                    "acquiring `{}` while holding `{}` (line {}) inverts the \
                                     declared lock order ({} before {})",
                                    acq.lock, g.lock, g.line, acq.lock, g.lock
                                ),
                            });
                        }
                    }
                }
            }
        }

        // Interprocedural: effects reachable through calls made on this
        // line, checked against the guards live around the call.
        if model.interprocedural {
            for call in &lf.calls {
                for &j in model.callees(call) {
                    let callee = &model.units[j];
                    for effect in callee.summary.keys() {
                        match effect {
                            Effect::Acquire(lock) | Effect::AcquireOpt(lock) => {
                                let Some(new_rank) = rank(lock) else {
                                    continue;
                                };
                                for g in &live {
                                    let Some(held_rank) = rank(&g.lock) else {
                                        continue;
                                    };
                                    if new_rank < held_rank {
                                        findings.push(Finding {
                                            path: file.path.clone(),
                                            line: lineno,
                                            rule: "lock-order".into(),
                                            message: format!(
                                                "acquiring `{}` via {} while holding `{}` \
                                                 (line {}) inverts the declared lock order \
                                                 ({} before {})",
                                                lock,
                                                model.chain(j, effect),
                                                g.lock,
                                                g.line,
                                                lock,
                                                g.lock
                                            ),
                                        });
                                    }
                                }
                            }
                            Effect::Io(marker) => {
                                if let Some(g) = live.first() {
                                    findings.push(Finding {
                                        path: file.path.clone(),
                                        line: lineno,
                                        rule: "lock-io".into(),
                                        message: format!(
                                            "I/O (`{}`) reached via {} while lock guard `{}` \
                                             (line {}) is held; move the call outside the \
                                             critical section",
                                            trim_marker(marker),
                                            model.chain(j, effect),
                                            g.lock,
                                            g.line
                                        ),
                                    });
                                }
                                if let Some(g) = live_opt.first() {
                                    findings.push(Finding {
                                        path: file.path.clone(),
                                        line: lineno,
                                        rule: "olc-io".into(),
                                        message: format!(
                                            "I/O (`{}`) reached via {} inside the optimistic \
                                             read span on `{}` (line {}); do the I/O with no \
                                             span open and re-check with `still_valid`",
                                            trim_marker(marker),
                                            model.chain(j, effect),
                                            g.lock,
                                            g.line
                                        ),
                                    });
                                }
                            }
                            Effect::Blocking(marker) => {
                                if let Some(g) = live.first() {
                                    findings.push(Finding {
                                        path: file.path.clone(),
                                        line: lineno,
                                        rule: "lock-blocking".into(),
                                        message: format!(
                                            "blocking op (`{}`) reached via {} while lock guard \
                                             `{}` (line {}) is held; a parked thread must not \
                                             pin a lock",
                                            trim_marker(marker),
                                            model.chain(j, effect),
                                            g.lock,
                                            g.line
                                        ),
                                    });
                                }
                            }
                            Effect::Checkpoint | Effect::Publish => {}
                        }
                    }
                }
            }
        }

        // lock-io, direct: I/O markers while any guard is live. The
        // guard may also be acquired on this same line
        // (`for … in x.lock()…`).
        let has_live_before = !live.is_empty();
        let acquired_holding = !lf.acquisitions.iter().all(|a| a.temporary);
        if has_live_before || acquired_holding {
            for marker in &lf.io {
                let holder = live
                    .first()
                    .map(|g| format!("`{}` (line {})", g.lock, g.line))
                    .unwrap_or_else(|| {
                        lf.acquisitions
                            .first()
                            .map(|a| format!("`{}` (this line)", a.lock))
                            .unwrap_or_default()
                    });
                findings.push(Finding {
                    path: file.path.clone(),
                    line: lineno,
                    rule: "lock-io".into(),
                    message: format!(
                        "I/O call `{}` while lock guard {} is held; move the I/O outside \
                         the critical section",
                        trim_marker(marker),
                        holder
                    ),
                });
            }
        }

        // olc-io, direct: I/O markers while an optimistic read span is
        // live (the span may open on this same line).
        let opt_open_here = !lf.opt_spans.iter().all(|a| a.temporary);
        if !live_opt.is_empty() || opt_open_here {
            for marker in &lf.io {
                let holder = live_opt
                    .first()
                    .map(|g| format!("`{}` (line {})", g.lock, g.line))
                    .unwrap_or_else(|| {
                        lf.opt_spans
                            .first()
                            .map(|a| format!("`{}` (this line)", a.lock))
                            .unwrap_or_default()
                    });
                findings.push(Finding {
                    path: file.path.clone(),
                    line: lineno,
                    rule: "olc-io".into(),
                    message: format!(
                        "I/O call `{}` inside the optimistic read span on {}; do the I/O \
                         with no span open and re-check with `still_valid`",
                        trim_marker(marker),
                        holder
                    ),
                });
            }
        }

        // lock-blocking, direct: a blocking op while a guard other
        // than the waited-on one is live.
        for op in &lf.blocking {
            let offending = live
                .iter()
                .find(|g| g.binding.as_deref() != op.waived.as_deref() || op.waived.is_none());
            if let Some(g) = offending {
                findings.push(Finding {
                    path: file.path.clone(),
                    line: lineno,
                    rule: "lock-blocking".into(),
                    message: format!(
                        "blocking op `{}` while lock guard `{}` (line {}) is held; a parked \
                         thread must not pin a lock",
                        trim_marker(op.marker),
                        g.lock,
                        g.line
                    ),
                });
            }
        }

        // Update liveness *after* analysis: a temporary dies with its
        // statement, a held binding lives until its block closes.
        depth += lf.brace_delta;
        // A `let … else {` brace is the diverging arm; guards bound on
        // that line outlive it, so they pin to the enclosing depth.
        let guard_depth = if lf.let_else {
            depth - lf.brace_delta
        } else {
            depth
        };
        for span in &lf.opt_spans {
            if !span.temporary {
                live_opt.push(LiveGuard {
                    lock: span.lock.clone(),
                    binding: span.binding.clone(),
                    line: lineno,
                    min_depth: guard_depth,
                });
            }
        }
        for acq in &lf.acquisitions {
            if !acq.temporary {
                live.push(LiveGuard {
                    lock: acq.lock.clone(),
                    binding: acq.binding.clone(),
                    line: lineno,
                    // A `for`/`match` header that opened a brace owns
                    // the guard for that block; a `let` owns it for
                    // the current block.
                    min_depth: guard_depth,
                });
            }
        }
        // A `let` binding of a guard-returning call is a live guard on
        // the lock that call acquires (`commit_section()`).
        if model.interprocedural {
            if let Some(binding) = &lf.binding {
                if binding != "_" {
                    for call in &lf.calls {
                        for &j in model.callees(call) {
                            if let Some(lock) = &model.units[j].returns_guard {
                                live.push(LiveGuard {
                                    lock: lock.clone(),
                                    binding: Some(binding.clone()),
                                    line: lineno,
                                    min_depth: depth,
                                });
                            }
                        }
                    }
                }
            }
        }
        // Explicit drops.
        if let Some(dropped) = &lf.dropped {
            live.retain(|g| g.binding.as_deref() != Some(dropped.as_str()));
            live_opt.retain(|g| g.binding.as_deref() != Some(dropped.as_str()));
        }
        live.retain(|g| depth >= g.min_depth);
        live_opt.retain(|g| depth >= g.min_depth);
    }
}

fn trim_marker(marker: &str) -> &str {
    marker.trim_matches(|c| c == '.' || c == '(' || c == ')')
}
