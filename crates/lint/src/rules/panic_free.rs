//! `panic-freedom`: the server-resident hot paths must not contain
//! reachable panics. A panic in a worker thread turns a single bad
//! query into lost availability; typed errors surface over the wire
//! as `Error` frames instead.
//!
//! Scope: non-test code in `crates/core`, `crates/storage`, and
//! `crates/server`. Forbidden: `unwrap()`, `expect()`, `panic!`,
//! `unreachable!`, `todo!`, `unimplemented!`. Slice/array indexing is
//! allowed only with pure literal indices/ranges, or when a bounds
//! guard (`assert!`, `.len()`, `if`/`while`/`match`/`for`, `.min(`,
//! `%`, `.get(`) appears within the preceding lines of the same
//! non-test code.

use crate::source::SourceFile;
use crate::Finding;

const RULE: &str = "panic-freedom";

/// Lines of context searched for a bounds guard before an indexing
/// expression.
const GUARD_WINDOW: usize = 10;

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

const GUARD_TOKENS: &[&str] = &[
    "assert!",
    "assert_eq!",
    "assert_ne!",
    "debug_assert",
    ".len()",
    "if ",
    "while ",
    "match ",
    "for ",
    ".min(",
    ".max(",
    ".get(",
    ".get_mut(",
    "%",
];

fn in_scope(path: &str) -> bool {
    [
        "crates/core/src/",
        "crates/storage/src/",
        "crates/server/src/",
    ]
    .iter()
    .any(|p| path.starts_with(p))
}

/// Runs the rule over one file.
pub fn check(file: &SourceFile, findings: &mut Vec<Finding>) {
    if !in_scope(&file.path) {
        return;
    }
    let lines = file.scrubbed_lines();
    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        if file.is_test_line(lineno) {
            continue;
        }
        for token in PANIC_TOKENS {
            if let Some(col) = line.find(token) {
                // `.expect(` must be `Option/Result::expect`, not a
                // method the file defines (e.g. a parser's
                // `expect_token`); the token list already requires the
                // exact name, so any hit is a panic path.
                let _ = col;
                findings.push(Finding {
                    path: file.path.clone(),
                    line: lineno,
                    rule: RULE.into(),
                    message: format!(
                        "`{}` can panic on a server thread; return a typed error instead",
                        token.trim_matches(|c| c == '.' || c == '(')
                    ),
                });
            }
        }
        check_indexing(file, &lines, idx, findings);
    }
}

/// Flags `expr[...]` with a non-literal index and no nearby guard.
fn check_indexing(file: &SourceFile, lines: &[&str], idx: usize, findings: &mut Vec<Finding>) {
    let line = lines[idx];
    let bytes = line.as_bytes();
    let mut search_from = 0usize;
    while let Some(rel) = line[search_from..].find('[') {
        let open = search_from + rel;
        search_from = open + 1;
        // Indexing only when `[` directly follows an identifier, `)`,
        // or `]` — everything else is a type, attribute, pattern, or
        // literal position.
        let prev = if open == 0 { b' ' } else { bytes[open - 1] };
        if !(prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']') {
            continue;
        }
        // Find the matching `]` on this line; expressions split
        // across lines are rare enough to ignore.
        let mut depth = 0i32;
        let mut close = None;
        for (j, &b) in bytes.iter().enumerate().skip(open) {
            match b {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(close) = close else { continue };
        let index_expr = &line[open + 1..close];
        search_from = close + 1;
        if is_literal_index(index_expr) {
            continue;
        }
        if has_nearby_guard(file, lines, idx) {
            continue;
        }
        findings.push(Finding {
            path: file.path.clone(),
            line: idx + 1,
            rule: RULE.into(),
            message: format!(
                "indexing `[{}]` has no nearby bounds guard; use `.get()` or guard the index",
                index_expr.trim()
            ),
        });
    }
}

/// Literal indices and ranges of literals never need a guard.
fn is_literal_index(expr: &str) -> bool {
    !expr.trim().is_empty()
        && expr
            .chars()
            .all(|c| c.is_ascii_digit() || c == '.' || c == '_' || c.is_whitespace())
        || expr.trim() == ".."
}

fn has_nearby_guard(file: &SourceFile, lines: &[&str], idx: usize) -> bool {
    let from = idx.saturating_sub(GUARD_WINDOW);
    lines[from..=idx].iter().enumerate().any(|(k, l)| {
        !file.is_test_line(from + k + 1) && GUARD_TOKENS.iter().any(|g| l.contains(g))
    })
}
