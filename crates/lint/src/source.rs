//! Lexical source model shared by every rule.
//!
//! The build environment is offline — no `syn`, no `rustc` internals —
//! so the rules work on a scrubbed view of each file produced by a
//! small hand-rolled lexer. The lexer walks the file once, tracking
//! string/char/comment state, and produces:
//!
//! * `code` — the source with comments blanked (string literals kept),
//! * `scrubbed` — comments *and* literal contents blanked, so token
//!   scans cannot be fooled by `"panic!(…)"` inside a string or a doc
//!   example,
//! * per-line comment text, for `// lint:allow` pragmas and
//!   `// SAFETY:` comments,
//! * per-line `in_test` flags from `#[cfg(test)]`/`#[test]` spans and
//!   `tests/`/`benches/`/`examples/` paths.
//!
//! Blanking preserves byte positions and line structure, so a finding's
//! line number always refers to the original file.

/// One analyzed file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Original text.
    pub raw: String,
    /// Comments blanked; string literals kept.
    pub code: String,
    /// Comments blanked and string/char literal contents blanked.
    pub scrubbed: String,
    /// Comment text found on each line (0-indexed by line).
    pub comments: Vec<String>,
    /// Whether each line is test-only code.
    pub in_test: Vec<bool>,
    /// Parsed `lint:allow` pragmas.
    pub pragmas: Vec<Pragma>,
}

/// An inline `// lint:allow(<rule>): <reason>` escape hatch.
pub struct Pragma {
    /// The rule being allowed.
    pub rule: String,
    /// 1-indexed line the pragma comment sits on.
    pub line: usize,
    /// 1-indexed line the pragma applies to: its own line for a
    /// trailing comment, otherwise the next line carrying code.
    pub applies_to: usize,
    /// Whether a non-empty reason followed the rule name.
    pub has_reason: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

impl SourceFile {
    /// Lexes `raw` into the scrubbed views.
    pub fn parse(path: &str, raw: &str) -> SourceFile {
        let chars: Vec<char> = raw.chars().collect();
        let mut code: Vec<char> = Vec::with_capacity(chars.len());
        let mut scrubbed: Vec<char> = Vec::with_capacity(chars.len());
        let n_lines = raw.lines().count().max(1);
        let mut comments = vec![String::new(); n_lines];
        let mut line = 0usize;

        let mut state = State::Normal;
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied().unwrap_or('\0');
            if c == '\n' {
                if state == State::LineComment {
                    state = State::Normal;
                }
                code.push('\n');
                scrubbed.push('\n');
                line += 1;
                i += 1;
                continue;
            }
            match state {
                State::Normal => {
                    if c == '/' && next == '/' {
                        state = State::LineComment;
                        comments[line].push(c);
                        code.push(' ');
                        scrubbed.push(' ');
                    } else if c == '/' && next == '*' {
                        state = State::BlockComment(1);
                        comments[line].push(c);
                        code.push(' ');
                        scrubbed.push(' ');
                    } else if let Some(hashes) = raw_string_start(&chars, i) {
                        // Emit the prefix (r/br + hashes + quote) as-is
                        // in `code`, blanked in `scrubbed`.
                        let prefix_len = raw_prefix_len(&chars, i);
                        for &p in chars.iter().skip(i).take(prefix_len) {
                            code.push(p);
                            scrubbed.push(' ');
                        }
                        i += prefix_len;
                        state = State::RawStr(hashes);
                        continue;
                    } else if c == '"' || (c == 'b' && next == '"' && !ident_before(&chars, i)) {
                        if c == 'b' {
                            code.push('b');
                            scrubbed.push(' ');
                            code.push('"');
                            scrubbed.push(' ');
                            i += 2;
                        } else {
                            code.push('"');
                            scrubbed.push(' ');
                            i += 1;
                        }
                        state = State::Str;
                        continue;
                    } else if c == '\'' && is_char_literal(&chars, i) {
                        code.push('\'');
                        scrubbed.push(' ');
                        state = State::Char;
                    } else if c == 'b' && next == '\'' && !ident_before(&chars, i) {
                        code.push('b');
                        scrubbed.push(' ');
                        code.push('\'');
                        scrubbed.push(' ');
                        i += 2;
                        state = State::Char;
                        continue;
                    } else {
                        code.push(c);
                        scrubbed.push(c);
                    }
                }
                State::LineComment => {
                    comments[line].push(c);
                    code.push(' ');
                    scrubbed.push(' ');
                }
                State::BlockComment(depth) => {
                    comments[line].push(c);
                    code.push(' ');
                    scrubbed.push(' ');
                    if c == '/' && next == '*' {
                        state = State::BlockComment(depth + 1);
                        comments[line].push(next);
                        code.push(' ');
                        scrubbed.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '*' && next == '/' {
                        comments[line].push(next);
                        code.push(' ');
                        scrubbed.push(' ');
                        state = if depth > 1 {
                            State::BlockComment(depth - 1)
                        } else {
                            State::Normal
                        };
                        i += 2;
                        continue;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        code.push(c);
                        scrubbed.push(' ');
                        if next != '\n' {
                            code.push(next);
                            scrubbed.push(' ');
                            i += 2;
                            continue;
                        }
                    } else if c == '"' {
                        code.push('"');
                        scrubbed.push(' ');
                        state = State::Normal;
                    } else {
                        code.push(c);
                        scrubbed.push(' ');
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' && raw_string_ends(&chars, i, hashes) {
                        for k in 0..=(hashes as usize) {
                            if let Some(&p) = chars.get(i + k) {
                                code.push(p);
                                scrubbed.push(' ');
                            }
                        }
                        i += 1 + hashes as usize;
                        state = State::Normal;
                        continue;
                    }
                    code.push(c);
                    scrubbed.push(' ');
                }
                State::Char => {
                    if c == '\\' && next != '\n' {
                        code.push(c);
                        scrubbed.push(' ');
                        code.push(next);
                        scrubbed.push(' ');
                        i += 2;
                        continue;
                    }
                    if c == '\'' {
                        code.push('\'');
                        scrubbed.push(' ');
                        state = State::Normal;
                    } else {
                        code.push(c);
                        scrubbed.push(' ');
                    }
                }
            }
            i += 1;
        }

        let code: String = code.into_iter().collect();
        let scrubbed: String = scrubbed.into_iter().collect();
        let in_test = test_spans(path, &scrubbed, n_lines);
        let pragmas = parse_pragmas(&comments, &scrubbed);
        SourceFile {
            path: path.to_string(),
            raw: raw.to_string(),
            code,
            scrubbed,
            comments,
            in_test,
            pragmas,
        }
    }

    /// 1-indexed scrubbed lines.
    pub fn scrubbed_lines(&self) -> Vec<&str> {
        self.scrubbed.lines().collect()
    }

    /// True if a pragma allows `rule` on 1-indexed `line`.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.pragmas
            .iter()
            .any(|p| p.rule == rule && p.has_reason && (p.applies_to == line || p.line == line))
    }

    /// True if 1-indexed `line` is test-only code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test
            .get(line.wrapping_sub(1))
            .copied()
            .unwrap_or(false)
    }
}

/// Is `chars[i]` the quote-or-prefix start of a raw string? Returns
/// the hash count if so.
fn raw_string_start(chars: &[char], i: usize) -> Option<u32> {
    let c = chars[i];
    let mut j = i;
    if c == 'b' {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    if ident_before(chars, i) {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Length of the `r#*"` / `br#*"` prefix starting at `i`.
fn raw_prefix_len(chars: &[char], i: usize) -> usize {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    j += 1; // r
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    j + 1 - i // closing quote
}

/// Does the `"` at `i` close a raw string with `hashes` hashes?
fn raw_string_ends(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Is the previous character part of an identifier (so `r`/`b` here is
/// the tail of a name, not a literal prefix)?
fn ident_before(chars: &[char], i: usize) -> bool {
    i > 0
        && chars
            .get(i - 1)
            .is_some_and(|c| c.is_alphanumeric() || *c == '_')
}

/// Is the `'` at `i` a char literal (vs a lifetime)?
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(c) if c.is_alphanumeric() || *c == '_' => chars.get(i + 2) == Some(&'\''),
        Some('\'') => false, // '' is not valid either way
        Some(_) => true,     // e.g. '(' — punctuation char literal
        None => false,
    }
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` item spans, plus
/// whole files under test-only directory roots.
fn test_spans(path: &str, scrubbed: &str, n_lines: usize) -> Vec<bool> {
    let mut in_test = vec![false; n_lines];
    let p = path.replace('\\', "/");
    if p.split('/')
        .any(|c| c == "tests" || c == "benches" || c == "examples")
    {
        in_test.iter_mut().for_each(|t| *t = true);
        return in_test;
    }

    // Byte offset of each attribute occurrence, then brace-match the
    // item that follows.
    let bytes = scrubbed.as_bytes();
    let mut line_of = Vec::with_capacity(bytes.len());
    let mut ln = 0usize;
    for &b in bytes {
        line_of.push(ln);
        if b == b'\n' {
            ln += 1;
        }
    }
    for pat in ["#[cfg(test)]", "#[cfg(all(test", "#[test]"] {
        let mut from = 0usize;
        while let Some(rel) = scrubbed[from..].find(pat) {
            let start = from + rel;
            from = start + pat.len();
            // Find the opening brace of the annotated item; bail at a
            // `;` (e.g. `#[cfg(test)] use x;`).
            let mut j = start + pat.len();
            let mut open = None;
            while j < bytes.len() {
                match bytes[j] {
                    b'{' => {
                        open = Some(j);
                        break;
                    }
                    b';' => break,
                    _ => j += 1,
                }
            }
            let Some(open) = open else { continue };
            let mut depth = 0i32;
            let mut k = open;
            while k < bytes.len() {
                match bytes[k] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let first = line_of.get(start).copied().unwrap_or(0);
            let last = line_of
                .get(k.min(bytes.len() - 1))
                .copied()
                .unwrap_or(n_lines - 1);
            for t in in_test.iter_mut().take(last + 1).skip(first) {
                *t = true;
            }
        }
    }
    in_test
}

/// Extracts `lint:allow(<rule>): <reason>` pragmas from comment text.
fn parse_pragmas(comments: &[String], scrubbed: &str) -> Vec<Pragma> {
    let scrubbed_lines: Vec<&str> = scrubbed.lines().collect();
    let mut pragmas = Vec::new();
    for (idx, comment) in comments.iter().enumerate() {
        let mut from = 0usize;
        while let Some(rel) = comment[from..].find("lint:allow(") {
            let start = from + rel + "lint:allow(".len();
            from = start;
            let Some(close) = comment[start..].find(')') else {
                break;
            };
            let rule = comment[start..start + close].trim().to_string();
            // Rule names are kebab-case idents; anything else (e.g.
            // the `<rule>` placeholder in docs that *describe* the
            // pragma syntax) is not a pragma.
            if rule.is_empty()
                || !rule
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
            {
                continue;
            }
            let rest = &comment[start + close + 1..];
            let has_reason = rest
                .strip_prefix(':')
                .map(|r| !r.trim().is_empty())
                .unwrap_or(false);
            // Trailing comment applies to its own line; a comment-only
            // line applies to the next line carrying code.
            let own_line_has_code = scrubbed_lines
                .get(idx)
                .map(|l| !l.trim().is_empty())
                .unwrap_or(false);
            let applies_to = if own_line_has_code {
                idx + 1
            } else {
                let mut j = idx + 1;
                while j < scrubbed_lines.len() && scrubbed_lines[j].trim().is_empty() {
                    j += 1;
                }
                j + 1
            };
            pragmas.push(Pragma {
                rule,
                line: idx + 1,
                applies_to,
                has_reason,
            });
        }
    }
    pragmas
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let a = \"panic!(x)\"; // unwrap() here\nlet b = 'x';\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(!f.scrubbed.contains("panic!"));
        assert!(!f.scrubbed.contains("unwrap"));
        assert!(f.code.contains("panic!(x)")); // strings kept in `code`
        assert!(f.comments[0].contains("unwrap() here"));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let s = r#\"un\"wrap()\"#; }\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(!f.scrubbed.contains("wrap"));
        assert!(f.scrubbed.contains("fn f<'a>"));
    }

    #[test]
    fn cfg_test_spans_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
    }

    #[test]
    fn pragma_parsing() {
        let src = "a(); // lint:allow(panic-freedom): guarded above\n// lint:allow(lock-io): flush on drop\nb();\nc(); // lint:allow(lock-io)\n";
        let f = SourceFile::parse("crates/core/src/x.rs", src);
        assert!(f.allowed("panic-freedom", 1));
        assert!(f.allowed("lock-io", 3));
        assert!(!f.allowed("lock-io", 4)); // no reason given
    }
}
