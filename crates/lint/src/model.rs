//! Interprocedural model: function units, a call graph, and effect
//! summaries propagated to a fixpoint.
//!
//! The per-file lexical pass ([`crate::source::SourceFile`]) cannot see
//! across function boundaries, so an ABBA inversion split over two
//! functions — or I/O hidden one call deep — was invisible to the lint
//! until now. This module builds, on top of the scrubbed text:
//!
//! 1. **Units** — every `fn` item (plus every detached spawn-closure
//!    body, see below) with its body lines and per-line lexical facts:
//!    lock acquisitions, I/O markers, blocking ops, outgoing calls.
//! 2. **A call graph** — calls are resolved *conservatively by name*:
//!    `x.frob()` links to every workspace `fn frob`. There is no type
//!    information in an offline lexical pass, so a call may link to
//!    several candidates (trait methods included) and the rules treat
//!    the union of their effects as reachable. Names on the [`AMBIENT`]
//!    list (ubiquitous std method names like `get`/`insert`/`clone`)
//!    are never resolved — linking them would alias unrelated code all
//!    over the workspace.
//! 3. **Summaries** — a map `Effect → Provenance` per unit. The direct
//!    pass seeds each unit with the effects its own body performs; the
//!    fixpoint then unions callee summaries into callers until nothing
//!    changes. Effect sets only grow, so the iteration is monotone and
//!    terminates on cyclic (recursive) graphs. Provenance records the
//!    callsite line and callee an effect arrived through, so findings
//!    can print the full chain down to the offending site.
//!
//! # Effect kinds
//!
//! [`Effect`] is the extension point: a future primitive (e.g. the
//! optimistic guard from ROADMAP item 1) slots in as a new variant, a
//! direct-extraction arm in [`line_facts`], and a consumer in a rule —
//! the propagation engine itself is kind-agnostic.
//!
//! # Spawn detachment
//!
//! A closure handed to `spawn(` runs on a *new* thread that starts with
//! no locks held, so its effects must not leak into the spawning
//! function (that would flag `server.lock(); spawn(|| io())` as
//! I/O-under-lock). Braced spawn closures become their own root units,
//! analyzed with an empty guard context; their effects are not
//! propagated to the spawner.
//!
//! # Escape hatches
//!
//! A reasoned lock-io / lock-blocking `lint:allow` pragma *at the
//! effect's source line* kills the effect for propagation too: the
//! pragma declares that I/O (or blocking) under
//! locks is part of the documented protocol there, so re-flagging every
//! transitive caller would only manufacture ceremony. Such kills are
//! recorded as pragma uses for stale-pragma detection. `Acquire`
//! effects are never killed — an acquisition is a fact, not a
//! violation, and hiding it would mask real inversions in callers.

use std::collections::{BTreeMap, BTreeSet};

use crate::rules::ident_ending_at;
use crate::rules::lock::rank;
use crate::rules::protocol::ProtocolSpec;
use crate::source::SourceFile;

/// File/socket I/O markers (shared with the `lock-io` rule).
pub const IO_MARKERS: &[&str] = &[
    ".write_all(",
    ".read_exact(",
    ".flush(",
    ".sync_all(",
    ".sync_data(",
    ".set_len(",
    ".shutdown(",
    ".accept()",
    "File::open",
    "File::create",
    "OpenOptions",
    "TcpStream::connect",
    "read_frame(",
    "write_frame(",
    ".write_page(",
    ".read_page(",
    ".read_pages(",
    ".log_page(",
    ".allocate_contiguous(",
    "std::fs::",
];

/// Blocking-op markers for the `lock-blocking` rule: condvar waits,
/// thread joins, channel receives. `.join()` only matches the empty
/// argument list (scrubbing blanks string quotes, so `v.join(", ")`
/// cannot match), and bare `.send(` is deliberately absent — the
/// workspace's std mpsc senders are unbounded and non-blocking, and its
/// bounded queues are condvar-built, which the wait markers cover.
pub const BLOCKING_MARKERS: &[&str] = &[
    ".wait(",
    ".wait_for(",
    ".wait_while(",
    ".wait_timeout(",
    ".join()",
    ".recv()",
    ".recv_timeout(",
];

/// Ubiquitous std method names that are never resolved by name — a
/// workspace `fn get` must not alias every `map.get(` in the tree.
/// Workspace functions that need interprocedural checking must not
/// reuse these names (the lint's own corpus guards the interesting
/// ones).
const AMBIENT: &[&str] = &[
    "add",
    "all",
    "and_then",
    "any",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "borrow",
    "borrow_mut",
    "build",
    "chain",
    "chunks",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "copy_from_slice",
    "count",
    "default",
    "deref",
    "drain",
    "drop",
    "ends_with",
    "entry",
    "enumerate",
    "eq",
    "expect",
    "extend",
    "fill",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "finish",
    "first",
    "flat_map",
    "flatten",
    "fmt",
    "fold",
    "from",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "index",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lock",
    "map",
    "map_err",
    "max",
    "min",
    "ne",
    "new",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_default",
    "or_else",
    "or_insert",
    "or_insert_with",
    "partial_cmp",
    "parse",
    "pop",
    "position",
    "push",
    "push_str",
    "read",
    "remove",
    "replace",
    "reserve",
    "resize",
    "retain",
    "rev",
    "rposition",
    "saturating_sub",
    "set",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "split_at",
    "starts_with",
    "stats",
    "sum",
    "swap",
    "take",
    "take_while",
    "then",
    "then_some",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "try_into",
    "try_lock",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "values_mut",
    "wait",
    "windows",
    "with_capacity",
    "write",
    "write_u8",
    "write_u16",
    "write_u32",
    "write_u64",
    "write_usize",
    "zip",
];

/// Control-flow keywords that precede `(` without being calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "in", "loop", "move",
];

/// Effect kinds propagated through the call graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Effect {
    /// Acquires the named lock field somewhere inside.
    Acquire(String),
    /// Exclusively locks the named optimistic version word
    /// (`.lock_exclusive()` on an `OptLock` field) somewhere inside.
    /// Ranked and propagated exactly like [`Effect::Acquire`] — the
    /// exclusive side of a version word is a spinlock, so it deadlocks
    /// like one — but kept keyed apart so findings name the primitive.
    AcquireOpt(String),
    /// Performs file/socket I/O (the marker is kept for messages).
    Io(String),
    /// Parks the calling thread (condvar wait, join, channel recv).
    Blocking(String),
    /// Performs a durable checkpoint (protocol-order).
    Checkpoint,
    /// Performs a result-publish (protocol-order).
    Publish,
}

/// Where an effect entered a unit: the 1-indexed line, and the callee
/// it arrived through (`None` for a direct site in the unit's body).
#[derive(Debug, Clone)]
pub struct Provenance {
    pub line: usize,
    pub via: Option<usize>,
}

pub type Summary = BTreeMap<Effect, Provenance>;

/// One direct lock-acquisition site.
#[derive(Debug, Clone)]
pub struct Acq {
    pub lock: String,
    pub binding: Option<String>,
    /// Statement-temporary: the guard cannot outlive its line.
    pub temporary: bool,
    /// True for `.lock_exclusive()` on an optimistic version word.
    pub optimistic: bool,
}

/// One direct blocking site.
#[derive(Debug, Clone)]
pub struct BlockingOp {
    pub marker: &'static str,
    /// For condvar waits, the guard binding handed to `.wait(&mut g)`:
    /// the wait atomically releases that one guard, so it alone is
    /// exempt from `lock-blocking` at this site.
    pub waived: Option<String>,
}

/// Lexical facts for one analyzed line of a unit.
#[derive(Debug, Clone, Default)]
pub struct LineFacts {
    /// 1-indexed source line.
    pub line: usize,
    pub acquisitions: Vec<Acq>,
    /// Optimistic *read* spans opened on this line
    /// (`.begin_optimistic()` bindings, `.optimistic_read(` closures).
    /// Not locks — they order nothing — but I/O performed while one is
    /// live is the `olc-io` rule's finding.
    pub opt_spans: Vec<Acq>,
    pub io: Vec<&'static str>,
    pub blocking: Vec<BlockingOp>,
    /// Outgoing call names (deduped, resolvable candidates only).
    pub calls: Vec<String>,
    /// `let [mut] <name> = …` binding on this line, if any.
    pub binding: Option<String>,
    /// True for a `let … else {` header: the brace it opens is the
    /// *diverging* arm, so guards bound here outlive it and belong to
    /// the enclosing block.
    pub let_else: bool,
    /// `drop(<name>)` on this line, if any.
    pub dropped: Option<String>,
    pub brace_delta: i32,
}

/// A function item, or a detached spawn-closure body.
pub struct Unit {
    /// Index into the model's file slice.
    pub file: usize,
    /// Bare name used for call resolution (`write_batch`).
    pub name: String,
    /// Qualified display name (`Database::write_batch`).
    pub display: String,
    /// 1-indexed declaration line.
    pub decl_line: usize,
    /// 1-indexed line of the closing brace.
    pub end_line: usize,
    /// Facts for the body lines this unit owns (nested fns and
    /// detached closures excluded).
    pub lines: Vec<LineFacts>,
    /// `Some(lock)` when the signature returns a `…Guard…` type and the
    /// body acquires a ranked lock: a `let` binding of the call result
    /// in a caller is a live guard on that lock (`commit_section()`).
    pub returns_guard: Option<String>,
    /// True for detached spawn-closure bodies (not callable by name,
    /// effects not propagated to the spawner).
    pub spawn_unit: bool,
    pub summary: Summary,
}

/// Call-graph statistics surfaced through `--json`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Stats {
    pub functions: usize,
    pub edges: usize,
    pub fixpoint_iterations: usize,
}

pub struct Model<'a> {
    pub files: &'a [SourceFile],
    pub units: Vec<Unit>,
    by_name: BTreeMap<String, Vec<usize>>,
    pub stats: Stats,
    /// `(file index, line, rule)` effect-kills by reasoned pragmas,
    /// counted as uses by stale-pragma detection.
    pub pragma_uses: Vec<(usize, usize, &'static str)>,
    /// Whether summaries were propagated through the call graph.
    pub interprocedural: bool,
}

impl<'a> Model<'a> {
    pub fn build(
        files: &'a [SourceFile],
        spec: Option<&ProtocolSpec>,
        interprocedural: bool,
    ) -> Model<'a> {
        let mut units = Vec::new();
        let mut pragma_uses = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            // Markdown feeds only doc-drift; vendored shims are
            // runtime scaffolding whose method names (`lock`, `wait`,
            // `join`) would alias real std calls all over the tree —
            // their *callsites* are covered by the lexical markers.
            if file.path.ends_with(".md") || file.path.starts_with("vendor/") {
                continue;
            }
            extract_units(fi, file, spec, &mut units, &mut pragma_uses);
        }

        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, u) in units.iter().enumerate() {
            if !u.spawn_unit {
                by_name.entry(u.name.clone()).or_default().push(i);
            }
        }

        let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
        for (i, u) in units.iter().enumerate() {
            for lf in &u.lines {
                for call in &lf.calls {
                    if let Some(callees) = by_name.get(call) {
                        for &j in callees {
                            edges.insert((i, j));
                        }
                    }
                }
            }
        }

        // Fixpoint: union callee summaries into callers until stable.
        // Monotone (sets only grow), so cycles terminate.
        let mut iterations = 0usize;
        if interprocedural {
            loop {
                iterations += 1;
                let mut changed = false;
                for i in 0..units.len() {
                    let mut add: Vec<(Effect, Provenance)> = Vec::new();
                    for lf in &units[i].lines {
                        for call in &lf.calls {
                            let Some(callees) = by_name.get(call) else {
                                continue;
                            };
                            for &j in callees {
                                for effect in units[j].summary.keys() {
                                    if !units[i].summary.contains_key(effect) {
                                        add.push((
                                            effect.clone(),
                                            Provenance {
                                                line: lf.line,
                                                via: Some(j),
                                            },
                                        ));
                                    }
                                }
                            }
                        }
                    }
                    for (effect, prov) in add {
                        if let std::collections::btree_map::Entry::Vacant(e) =
                            units[i].summary.entry(effect)
                        {
                            e.insert(prov);
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }

        let stats = Stats {
            functions: units.len(),
            edges: edges.len(),
            fixpoint_iterations: iterations,
        };
        Model {
            files,
            units,
            by_name,
            stats,
            pragma_uses,
            interprocedural,
        }
    }

    /// Candidate unit indices a call name resolves to.
    pub fn callees(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Renders the provenance chain of `effect` starting from
    /// `callee`: `` `flush_shard` → `write_back` (path:line) `` — the
    /// functions walked through and the direct site at the end.
    pub fn chain(&self, callee: usize, effect: &Effect) -> String {
        let mut steps = Vec::new();
        let mut seen = BTreeSet::new();
        let mut cur = callee;
        loop {
            steps.push(format!("`{}`", self.units[cur].display));
            if steps.len() >= 8 || !seen.insert(cur) {
                steps.push("…".into());
                break;
            }
            match self.units[cur].summary.get(effect) {
                Some(Provenance {
                    line,
                    via: Some(next),
                }) => {
                    let _ = line;
                    cur = *next;
                }
                Some(Provenance { line, via: None }) => {
                    steps.push(format!(
                        "({}:{})",
                        self.files[self.units[cur].file].path, line
                    ));
                    break;
                }
                None => break,
            }
        }
        steps.join(" → ")
    }
}

/// Who owns a source line for analysis purposes.
#[derive(Clone, Copy, PartialEq)]
enum Owner {
    None,
    Range(usize),
}

struct RawRange {
    /// 0-indexed body-open line and byte column of `{`.
    open: (usize, usize),
    /// 0-indexed close line and byte column of `}`.
    close: (usize, usize),
    /// `None` for a braceless spawn call (lines excluded, no unit).
    kind: RangeKind,
}

enum RangeKind {
    Fn {
        name: String,
        display: String,
        decl_line: usize,
        sig: String,
    },
    Spawn,
    Excluded,
}

fn extract_units(
    fi: usize,
    file: &SourceFile,
    spec: Option<&ProtocolSpec>,
    units: &mut Vec<Unit>,
    pragma_uses: &mut Vec<(usize, usize, &'static str)>,
) {
    let lines: Vec<&str> = file.scrubbed_lines();
    if lines.is_empty() {
        return;
    }
    let impl_ctx = impl_context(&lines);

    let mut ranges: Vec<RawRange> = Vec::new();

    // Function items.
    for (li, line) in lines.iter().enumerate() {
        if file.is_test_line(li + 1) {
            continue;
        }
        let mut from = 0usize;
        while let Some(rel) = line[from..].find("fn ") {
            let at = from + rel;
            from = at + 3;
            // Word boundary before `fn` (reject `often `, `Fn `).
            if at > 0 {
                let prev = line.as_bytes()[at - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' {
                    continue;
                }
            }
            let name: String = line[at + 3..]
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            // Find the body `{` (or `;` for a bodiless trait method).
            let Some((open, sig)) = find_body_open(&lines, li, at) else {
                continue;
            };
            let Some(close) = match_braces(&lines, open) else {
                continue;
            };
            let display = match impl_ctx[li].as_deref() {
                Some(ty) => format!("{ty}::{name}"),
                None => name.clone(),
            };
            ranges.push(RawRange {
                open,
                close,
                kind: RangeKind::Fn {
                    name,
                    display,
                    decl_line: li + 1,
                    sig,
                },
            });
        }
    }

    // Detached spawn closures.
    for (li, line) in lines.iter().enumerate() {
        if file.is_test_line(li + 1) {
            continue;
        }
        let mut from = 0usize;
        while let Some(rel) = line[from..].find("spawn(") {
            let at = from + rel;
            from = at + 6;
            if ident_ending_at(line, at + 5) != "spawn" {
                continue;
            }
            match spawn_closure_range(&lines, li, at + 6) {
                Some(SpawnRange::Braced { open, close }) => ranges.push(RawRange {
                    open,
                    close,
                    kind: RangeKind::Spawn,
                }),
                Some(SpawnRange::Braceless { open, close }) => ranges.push(RawRange {
                    open,
                    close,
                    kind: RangeKind::Excluded,
                }),
                None => {}
            }
        }
    }

    // Innermost-wins line ownership: assign big ranges first so nested
    // ones (inner fns, spawn closures) overwrite their lines.
    let mut order: Vec<usize> = (0..ranges.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(ranges[i].close.0 - ranges[i].open.0));
    let mut owner = vec![Owner::None; lines.len()];
    for &ri in &order {
        let r = &ranges[ri];
        for slot in owner.iter_mut().take(r.close.0 + 1).skip(r.open.0) {
            *slot = match r.kind {
                RangeKind::Excluded => Owner::None,
                _ => Owner::Range(ri),
            };
        }
    }

    // Parent display names for spawn units: the innermost fn range
    // strictly containing the spawn open line.
    let parent_of_spawn = |ri: usize| -> String {
        let open = ranges[ri].open.0;
        ranges
            .iter()
            .filter(|r| matches!(r.kind, RangeKind::Fn { .. }))
            .filter(|r| r.open.0 <= open && open <= r.close.0)
            .min_by_key(|r| r.close.0 - r.open.0)
            .map(|r| match &r.kind {
                RangeKind::Fn { display, .. } => display.clone(),
                _ => unreachable!(),
            })
            .unwrap_or_else(|| "top".into())
    };

    for (ri, r) in ranges.iter().enumerate() {
        let (name, display, decl_line, sig, spawn_unit) = match &r.kind {
            RangeKind::Fn {
                name,
                display,
                decl_line,
                sig,
            } => (
                name.clone(),
                display.clone(),
                *decl_line,
                Some(sig.clone()),
                false,
            ),
            RangeKind::Spawn => {
                let parent = parent_of_spawn(ri);
                let name = format!("{parent}::spawn@{}", r.open.0 + 1);
                (name.clone(), name, r.open.0 + 1, None, true)
            }
            RangeKind::Excluded => continue,
        };

        let mut facts = Vec::new();
        for li in r.open.0..=r.close.0 {
            if owner[li] != Owner::Range(ri) || file.is_test_line(li + 1) {
                continue;
            }
            let full = lines[li];
            let start = if li == r.open.0 { r.open.1 } else { 0 };
            let end = if li == r.close.0 {
                (r.close.1 + 1).min(full.len())
            } else {
                full.len()
            };
            let slice = &full[start.min(end)..end];
            facts.push(line_facts(fi, file, li + 1, slice, pragma_uses));
        }

        let mut summary: Summary = BTreeMap::new();
        for lf in &facts {
            for a in &lf.acquisitions {
                let effect = if a.optimistic {
                    Effect::AcquireOpt(a.lock.clone())
                } else {
                    Effect::Acquire(a.lock.clone())
                };
                summary.entry(effect).or_insert(Provenance {
                    line: lf.line,
                    via: None,
                });
            }
            for m in &lf.io {
                summary
                    .entry(Effect::Io((*m).to_string()))
                    .or_insert(Provenance {
                        line: lf.line,
                        via: None,
                    });
            }
            for b in &lf.blocking {
                summary
                    .entry(Effect::Blocking(b.marker.to_string()))
                    .or_insert(Provenance {
                        line: lf.line,
                        via: None,
                    });
            }
            if let Some(spec) = spec {
                for call in &lf.calls {
                    if spec.checkpoint_fns.contains(call) {
                        summary.entry(Effect::Checkpoint).or_insert(Provenance {
                            line: lf.line,
                            via: None,
                        });
                    }
                    if spec.publish_fns.contains(call) {
                        summary.entry(Effect::Publish).or_insert(Provenance {
                            line: lf.line,
                            via: None,
                        });
                    }
                }
            }
        }
        // A function *named* as a protocol primitive carries its effect
        // even when its body shows nothing lexically (it IS the
        // checkpoint / publish implementation).
        if let Some(spec) = spec {
            if spec.checkpoint_fns.contains(&name) {
                summary.entry(Effect::Checkpoint).or_insert(Provenance {
                    line: decl_line,
                    via: None,
                });
            }
            if spec.publish_fns.contains(&name) {
                summary.entry(Effect::Publish).or_insert(Provenance {
                    line: decl_line,
                    via: None,
                });
            }
        }

        let returns_guard = sig.as_deref().and_then(|sig| {
            let arrow = sig.find("->")?;
            if !sig[arrow..].contains("Guard") {
                return None;
            }
            facts
                .iter()
                .flat_map(|lf| lf.acquisitions.iter())
                .find(|a| rank(&a.lock).is_some())
                .map(|a| a.lock.clone())
        });

        units.push(Unit {
            file: fi,
            name,
            display,
            decl_line,
            end_line: r.close.0 + 1,
            lines: facts,
            returns_guard,
            spawn_unit,
            summary,
        });
    }
}

/// From the `fn` keyword at `(li, col)`, finds the body-open `{` and
/// returns it with the signature text (decl up to the brace). `None`
/// for bodiless trait signatures.
fn find_body_open(lines: &[&str], li: usize, col: usize) -> Option<((usize, usize), String)> {
    let mut sig = String::new();
    let mut l = li;
    let mut c = col;
    // Angle-bracket depth so `fn f<T: Ord>(…)` generics and return
    // types like `-> Option<Vec<u8>>` cannot hide the real `{`.
    loop {
        let line = lines.get(l)?;
        for (off, ch) in line[c.min(line.len())..].char_indices() {
            match ch {
                '{' => return Some(((l, c + off), sig)),
                ';' => return None,
                _ => sig.push(ch),
            }
        }
        sig.push(' ');
        l += 1;
        c = 0;
        if l > li + 24 {
            return None; // runaway signature; bail conservatively
        }
    }
}

/// Matches braces from the `{` at `open`, returning the closing `}`.
fn match_braces(lines: &[&str], open: (usize, usize)) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    let mut l = open.0;
    let mut c = open.1;
    loop {
        let line = lines.get(l)?;
        for (off, ch) in line[c.min(line.len())..].char_indices() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((l, c + off));
                    }
                }
                _ => {}
            }
        }
        l += 1;
        c = 0;
    }
}

enum SpawnRange {
    Braced {
        open: (usize, usize),
        close: (usize, usize),
    },
    Braceless {
        open: (usize, usize),
        close: (usize, usize),
    },
}

/// From just past `spawn(` at `(li, col)`, finds the closure body brace
/// (braced) or the call's closing paren (braceless).
fn spawn_closure_range(lines: &[&str], li: usize, col: usize) -> Option<SpawnRange> {
    let mut paren = 1i32;
    let mut l = li;
    let mut c = col;
    loop {
        let line = lines.get(l)?;
        for (off, ch) in line[c.min(line.len())..].char_indices() {
            match ch {
                '(' => paren += 1,
                ')' => {
                    paren -= 1;
                    if paren == 0 {
                        return Some(SpawnRange::Braceless {
                            open: (li, 0),
                            close: (l, c + off),
                        });
                    }
                }
                '{' => {
                    let open = (l, c + off);
                    let close = match_braces(lines, open)?;
                    return Some(SpawnRange::Braced { open, close });
                }
                _ => {}
            }
        }
        l += 1;
        c = 0;
        if l > li + 200 {
            return None;
        }
    }
}

/// Innermost `impl` type name per line, for qualified display names.
fn impl_context(lines: &[&str]) -> Vec<Option<String>> {
    let mut ctx = vec![None; lines.len()];
    let mut depth = 0i32;
    let mut stack: Vec<(i32, String)> = Vec::new();
    let mut pending: Option<String> = None;
    for (li, line) in lines.iter().enumerate() {
        ctx[li] = stack.last().map(|(_, t)| t.clone());
        let trimmed = line.trim_start();
        if depth == 0 && (trimmed.starts_with("impl ") || trimmed.starts_with("impl<")) {
            pending = impl_type_name(trimmed);
        }
        depth += line.matches('{').count() as i32 - line.matches('}').count() as i32;
        if let Some(t) = pending.take() {
            if depth >= 1 {
                stack.push((depth, t.clone()));
                ctx[li] = Some(t);
            } else {
                pending = Some(t); // header continues on a later line
            }
        }
        while let Some((d, _)) = stack.last() {
            if depth < *d {
                stack.pop();
            } else {
                break;
            }
        }
    }
    ctx
}

/// `impl<T> Foo for bar::Baz<T> {` → `Baz`.
fn impl_type_name(trimmed: &str) -> Option<String> {
    let mut rest = trimmed.strip_prefix("impl")?;
    if rest.starts_with('<') {
        let mut depth = 0i32;
        let mut cut = rest.len();
        for (i, ch) in rest.char_indices() {
            match ch {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &rest[cut..];
    }
    let rest = rest.trim_start();
    // `Trait for Type` → use the Type side.
    let ty = match rest.find(" for ") {
        Some(at) => &rest[at + 5..],
        None => rest,
    };
    let ty = ty.trim_start();
    let last_segment = ty
        .split("::")
        .last()
        .unwrap_or(ty)
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<String>();
    (!last_segment.is_empty()).then_some(last_segment)
}

/// Extracts the lexical facts of one owned line slice.
fn line_facts(
    fi: usize,
    file: &SourceFile,
    lineno: usize,
    slice: &str,
    pragma_uses: &mut Vec<(usize, usize, &'static str)>,
) -> LineFacts {
    let mut lf = LineFacts {
        line: lineno,
        brace_delta: slice.matches('{').count() as i32 - slice.matches('}').count() as i32,
        ..LineFacts::default()
    };
    lf.acquisitions = find_acquisitions(slice);
    find_optimistic_sites(slice, &mut lf.acquisitions, &mut lf.opt_spans);
    lf.binding = binding_name(slice.trim_start());
    lf.let_else = slice.trim_start().starts_with("let ") && slice.trim_end().ends_with("else {");
    lf.dropped = dropped_binding(slice).map(str::to_string);

    for m in IO_MARKERS {
        if slice.contains(m) {
            if file.allowed("lock-io", lineno) {
                pragma_uses.push((fi, lineno, "lock-io"));
            } else {
                lf.io.push(m);
            }
        }
    }
    for m in BLOCKING_MARKERS {
        let mut from = 0usize;
        while let Some(rel) = slice[from..].find(m) {
            let at = from + rel;
            from = at + m.len();
            if file.allowed("lock-blocking", lineno) {
                pragma_uses.push((fi, lineno, "lock-blocking"));
                continue;
            }
            let waived = if m.starts_with(".wait") {
                waited_guard(&slice[at + m.len()..])
            } else {
                None
            };
            lf.blocking.push(BlockingOp { marker: m, waived });
        }
    }

    // Outgoing calls: `ident(` sites, minus keywords, ambient std
    // method names, macro invocations (`ident!(` yields no ident), and
    // type/variant constructors (uppercase initial).
    for (i, b) in slice.bytes().enumerate() {
        if b != b'(' {
            continue;
        }
        let name = ident_ending_at(slice, i);
        if name.is_empty() {
            continue;
        }
        let first = name.chars().next().unwrap_or('_');
        if first.is_ascii_uppercase() || first.is_ascii_digit() {
            continue;
        }
        if KEYWORDS.contains(&name) || AMBIENT.contains(&name) {
            continue;
        }
        if !lf.calls.iter().any(|c| c == name) {
            lf.calls.push(name.to_string());
        }
    }
    lf
}

/// The `&mut g` argument of a condvar wait, i.e. the guard the wait
/// releases while parked.
fn waited_guard(after_paren: &str) -> Option<String> {
    let rest = after_paren.trim_start();
    let rest = rest.strip_prefix("&mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Finds `<ident>.lock()` / `.read()` / `.write()` acquisitions on a
/// scrubbed line slice and classifies how long the guard lives.
pub fn find_acquisitions(line: &str) -> Vec<Acq> {
    let mut out = Vec::new();
    let trimmed = line.trim_start();
    let is_binding = trimmed.starts_with("let ")
        || trimmed.starts_with("if let ")
        || trimmed.starts_with("while let ");
    let is_header = trimmed.starts_with("for ")
        || trimmed.starts_with("match ")
        || line.contains("for (")
        || line.contains(" in ");
    for method in [".lock()", ".read()", ".write()"] {
        let mut from = 0usize;
        while let Some(rel) = line[from..].find(method) {
            let at = from + rel;
            from = at + method.len();
            let lock = ident_ending_at(line, at).to_string();
            if lock.is_empty() {
                continue;
            }
            // A guard immediately method-chained (`x.lock().take()`)
            // is consumed within its statement; the binding, if any,
            // holds the chain's result, not the guard.
            let chained = line[at + method.len()..].starts_with('.');
            let binding = if is_binding {
                binding_name(trimmed)
            } else {
                None
            };
            // `let _ = …` drops immediately; a bare expression
            // statement (`x.lock().insert(…)`) is a temporary unless
            // it is a `for`/`match` header, whose temporary lives for
            // the whole block.
            let temporary = if is_header {
                false
            } else if chained {
                true
            } else if is_binding {
                binding.as_deref() == Some("_")
            } else {
                true
            };
            out.push(Acq {
                lock,
                binding,
                temporary,
                optimistic: false,
            });
        }
    }
    out
}

/// Finds the optimistic-concurrency sites on a scrubbed line slice:
/// `.lock_exclusive()` (the version word's exclusive/spinlock side,
/// pushed into `acquisitions` with `optimistic: true`) and
/// `.begin_optimistic()` / `.optimistic_read(` (read *spans*, pushed
/// into `opt_spans`). Receivers key by field name like ordinary lock
/// acquisitions, with one extra wrinkle: an index or call group before
/// the method (`tree_v[stripe].begin_optimistic()`) is skipped so the
/// field still names the span.
fn find_optimistic_sites(line: &str, acquisitions: &mut Vec<Acq>, opt_spans: &mut Vec<Acq>) {
    let trimmed = line.trim_start();
    let is_binding = trimmed.starts_with("let ")
        || trimmed.starts_with("if let ")
        || trimmed.starts_with("while let ");
    for (method, exclusive) in [
        (".lock_exclusive()", true),
        (".begin_optimistic()", false),
        (".optimistic_read(", false),
    ] {
        let mut from = 0usize;
        while let Some(rel) = line[from..].find(method) {
            let at = from + rel;
            from = at + method.len();
            let lock = receiver_ident(line, at).to_string();
            if lock.is_empty() || lock == "self" {
                continue;
            }
            let binding = if is_binding {
                binding_name(trimmed)
            } else {
                None
            };
            let temporary = if method == ".optimistic_read(" {
                // A multi-line closure (`optimistic_read(|g| {`) keeps
                // the span live until its brace closes; a one-line call
                // is consumed with its statement.
                line[at..].matches('{').count() <= line[at..].matches('}').count()
            } else if line[at + method.len()..].starts_with(['.', '?']) {
                // `begin_optimistic()?.confirm()` pins a number, not a
                // span; chained guards die with the statement.
                true
            } else if is_binding {
                binding.as_deref() == Some("_")
            } else {
                true
            };
            let site = Acq {
                lock,
                binding,
                temporary,
                optimistic: true,
            };
            if exclusive {
                acquisitions.push(site);
            } else {
                opt_spans.push(site);
            }
        }
    }
}

/// The identifier a method call at byte `at` is invoked on, skipping
/// back over one trailing `[…]` / `(…)` group so
/// `tree_v[stripe].begin_optimistic()` keys to `tree_v`.
fn receiver_ident(line: &str, at: usize) -> &str {
    let bytes = line.as_bytes();
    let mut end = at;
    if end > 0 && (bytes[end - 1] == b']' || bytes[end - 1] == b')') {
        let (close, open) = if bytes[end - 1] == b']' {
            (b']', b'[')
        } else {
            (b')', b'(')
        };
        let mut depth = 0i32;
        let mut i = end;
        let mut matched = false;
        while i > 0 {
            i -= 1;
            if bytes[i] == close {
                depth += 1;
            } else if bytes[i] == open {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    matched = true;
                    break;
                }
            }
        }
        if !matched {
            return "";
        }
    }
    ident_ending_at(line, end)
}

/// `let [mut] <name> = …` → the bound name, if it is a plain ident.
fn binding_name(trimmed: &str) -> Option<String> {
    let rest = trimmed
        .strip_prefix("let ")
        .or_else(|| trimmed.strip_prefix("if let "))
        .or_else(|| trimmed.strip_prefix("while let "))?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

fn dropped_binding(line: &str) -> Option<&str> {
    let at = line.find("drop(")?;
    let rest = &line[at + 5..];
    let end = rest.find(')')?;
    let name = rest[..end].trim();
    name.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_')
        .then_some(name)
}
