//! `molap-lint` — repo-specific static analysis for the molap
//! workspace.
//!
//! Four rule families, each with an inline escape hatch of the form
//! `// lint:allow(<rule>): <reason>` (the reason is mandatory; a
//! pragma without one does not suppress anything and is itself
//! reported):
//!
//! | rule | scope | checks |
//! |------|-------|--------|
//! | `panic-freedom` | non-test code in `crates/core`, `crates/storage`, `crates/server` | no `unwrap()`, `expect()`, `panic!`, `unreachable!`, `todo!`, `unimplemented!`; slice indexing needs literal indices or a nearby bounds guard |
//! | `wire-spec` | `crates/server/src/protocol.rs` | module-doc spec tables (frame tags, error codes, payload field order) match the consts/enums/encoders |
//! | `lock-io` | `crates/*/src` | no file/socket I/O while a lock guard is live |
//! | `lock-order` | `crates/*/src` | acquisitions respect the declared lock order |
//! | `unsafe-inventory` | whole workspace | every `unsafe` has a `// SAFETY:` comment; unsafe-free crates carry `#![forbid(unsafe_code)]` |
//!
//! The corpus under `crates/lint/tests/corpus/` proves each rule both
//! fires and respects `lint:allow`; `scripts/verify.sh` runs the
//! binary over the workspace (must be clean) and over the corpus
//! (must fail).

#![forbid(unsafe_code)]

use std::fmt;
use std::io;
use std::path::Path;

pub mod rules;
pub mod source;

use source::SourceFile;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule identifier (e.g. `panic-freedom`).
    pub rule: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

impl Finding {
    /// Machine-readable JSON encoding (one object per finding).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&self.path),
            self.line,
            json_escape(&self.rule),
            json_escape(&self.message)
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lints an in-memory set of `(relative_path, content)` sources. This
/// is the pure core `lint_workspace` and the corpus tests share.
pub fn lint_sources(files: &[(String, String)]) -> Vec<Finding> {
    let parsed: Vec<SourceFile> = files
        .iter()
        .map(|(path, content)| SourceFile::parse(path, content))
        .collect();

    let mut findings = Vec::new();
    for file in &parsed {
        rules::panic_free::check(file, &mut findings);
        rules::wire_spec::check(file, &mut findings);
        rules::lock::check(file, &mut findings);
        rules::unsafe_inv::check_file(file, &mut findings);
        rules::pragma_hygiene(file, &mut findings);
    }
    rules::unsafe_inv::check_packages(&parsed, &mut findings);

    // Drop findings covered by a reasoned lint:allow pragma.
    findings.retain(|f| {
        parsed
            .iter()
            .find(|p| p.path == f.path)
            .map(|p| !p.allowed(&f.rule, f.line))
            .unwrap_or(true)
    });
    findings.sort();
    findings
}

/// Walks `root` for `.rs` files and lints them. Directories named
/// `target`, `.git`, and `corpus` are skipped (the corpus is
/// deliberately full of violations). A file whose first line is
/// `//@ path: <virtual path>` is analyzed as if it lived at that
/// path — that is how corpus snippets opt into path-scoped rules.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect(root, root, &mut files)?;
    files.sort();
    let sources = files
        .iter()
        .map(|rel| {
            let content = std::fs::read_to_string(root.join(rel))?;
            let path = virtual_path(rel, &content);
            Ok((path, content))
        })
        .collect::<io::Result<Vec<_>>>()?;
    Ok(lint_sources(&sources))
}

/// Applies a `//@ path:` remap directive if present.
fn virtual_path(rel: &str, content: &str) -> String {
    content
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("//@ path:"))
        .map(|p| p.trim().to_string())
        .unwrap_or_else(|| rel.to_string())
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "corpus" {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}
