//! `molap-lint` — repo-specific static analysis for the molap
//! workspace.
//!
//! Rule families, each with an inline escape hatch of the form
//! `// lint:allow(<rule>): <reason>` (the reason is mandatory; a
//! pragma without one does not suppress anything and is itself
//! reported, and a reasoned pragma that suppresses *nothing* is
//! reported as stale):
//!
//! | rule | scope | checks |
//! |------|-------|--------|
//! | `panic-freedom` | non-test code in `crates/core`, `crates/storage`, `crates/server` | no `unwrap()`, `expect()`, `panic!`, `unreachable!`, `todo!`, `unimplemented!`; slice indexing needs literal indices or a nearby bounds guard |
//! | `wire-spec` | `crates/server/src/protocol.rs` | module-doc spec tables (frame tags, error codes, payload field order) match the consts/enums/encoders |
//! | `lock-io` | `crates/*/src` | no file/socket I/O while a lock guard is live — directly or through any chain of callees |
//! | `lock-order` | `crates/*/src` | acquisitions respect the declared lock order, including acquisitions reached through callees |
//! | `lock-blocking` | `crates/*/src` | no condvar wait / join / channel recv while a guard is held (the waited-on guard itself is exempt) |
//! | `protocol-order` | module-doc spec table in `crates/core/src/write.rs` | a durable checkpoint dominates every publish; no ack constructed before the checkpoint |
//! | `doc-drift` | `DESIGN.md` | the §8 lock table matches `DECLARED_ORDER` row for row |
//! | `unsafe-inventory` | whole workspace | every `unsafe` has a `// SAFETY:` comment; unsafe-free crates carry `#![forbid(unsafe_code)]` |
//! | `lint-pragma` | whole workspace | pragmas carry reasons and still suppress something |
//!
//! The lock rules run on an interprocedural model — a call graph with
//! per-function effect summaries propagated to a fixpoint (see
//! [`model`]) — so a violation hidden behind any number of calls is
//! found and reported with its full call chain.
//!
//! The corpus under `crates/lint/tests/corpus/` proves each rule both
//! fires and respects `lint:allow`; `scripts/verify.sh` runs the
//! binary over the workspace (must be clean) and over the corpus
//! (must fail), archiving the `--json` report as a build artifact.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::Path;

pub mod model;
pub mod rules;
pub mod source;

use source::SourceFile;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule identifier (e.g. `panic-freedom`).
    pub rule: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

impl Finding {
    /// Machine-readable JSON encoding (one object per finding).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&self.path),
            self.line,
            json_escape(&self.rule),
            json_escape(&self.message)
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Analysis options.
pub struct Options {
    /// Propagate effect summaries through the call graph. Always on in
    /// production; the corpus turns it off to prove the old
    /// intraprocedural pass misses the cross-function cases.
    pub interprocedural: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            interprocedural: true,
        }
    }
}

/// Call-graph statistics from the run, surfaced via `--json`.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintStats {
    pub functions: usize,
    pub edges: usize,
    pub fixpoint_iterations: usize,
}

/// A lint run's findings plus its call-graph statistics.
pub struct LintReport {
    pub findings: Vec<Finding>,
    pub stats: LintStats,
}

/// Lints an in-memory set of `(relative_path, content)` sources. This
/// is the pure core `lint_workspace` and the corpus tests share.
pub fn lint_sources(files: &[(String, String)]) -> Vec<Finding> {
    lint_sources_with(files, &Options::default()).findings
}

pub fn lint_sources_with(files: &[(String, String)], opts: &Options) -> LintReport {
    let parsed: Vec<SourceFile> = files
        .iter()
        .map(|(path, content)| SourceFile::parse(path, content))
        .collect();

    let spec = rules::protocol::parse_spec(&parsed);
    let model = model::Model::build(&parsed, spec.as_ref(), opts.interprocedural);

    let mut findings = Vec::new();
    for file in &parsed {
        if file.path.ends_with(".md") {
            // Markdown files only feed the doc-drift check; the rust
            // token rules would misread prose.
            rules::doc_drift::check(file, &mut findings);
            continue;
        }
        rules::panic_free::check(file, &mut findings);
        rules::wire_spec::check(file, &mut findings);
        rules::unsafe_inv::check_file(file, &mut findings);
        rules::pragma_hygiene(file, &mut findings);
    }
    rules::unsafe_inv::check_packages(&parsed, &mut findings);
    rules::lock::check_model(&model, &mut findings);
    if let Some(spec) = &spec {
        rules::protocol::check(&model, spec, &mut findings);
    }

    // Drop findings covered by a reasoned lint:allow pragma, recording
    // which (path, rule, line) keys each pragma actually suppressed.
    let mut suppressed: BTreeSet<(String, String, usize)> = BTreeSet::new();
    findings.retain(|f| {
        let Some(p) = parsed.iter().find(|p| p.path == f.path) else {
            return true;
        };
        if p.allowed(&f.rule, f.line) {
            suppressed.insert((f.path.clone(), f.rule.clone(), f.line));
            false
        } else {
            true
        }
    });

    // Stale-pragma detection: a reasoned pragma must either have
    // suppressed a finding or killed an effect at its source (recorded
    // by the model); otherwise it rotted through a refactor and is
    // itself a finding. (Reasonless pragmas are already reported by
    // `pragma_hygiene`.)
    let effect_uses: BTreeSet<(String, String, usize)> = model
        .pragma_uses
        .iter()
        .map(|&(fi, line, rule)| (parsed[fi].path.clone(), rule.to_string(), line))
        .collect();
    for file in &parsed {
        for pragma in &file.pragmas {
            if !pragma.has_reason || file.is_test_line(pragma.line) {
                continue;
            }
            let used = suppressed
                .iter()
                .chain(effect_uses.iter())
                .any(|(path, rule, line)| {
                    path == &file.path
                        && rule == &pragma.rule
                        && (*line == pragma.applies_to || *line == pragma.line)
                });
            if !used {
                findings.push(Finding {
                    path: file.path.clone(),
                    line: pragma.line,
                    rule: "lint-pragma".into(),
                    message: format!(
                        "lint:allow({}) suppresses no findings — stale pragma; delete it or \
                         re-anchor it to the violating line",
                        pragma.rule
                    ),
                });
            }
        }
    }

    // Deterministic output: stable sort by (path, line, rule, message),
    // then collapse to one finding per (path, line, rule) — the
    // interprocedural pass can reach the same effect through several
    // chains, and one report per site is enough to act on.
    findings.sort();
    findings.dedup_by(|a, b| a.path == b.path && a.line == b.line && a.rule == b.rule);

    LintReport {
        findings,
        stats: LintStats {
            functions: model.stats.functions,
            edges: model.stats.edges,
            fixpoint_iterations: model.stats.fixpoint_iterations,
        },
    }
}

/// Walks `root` for `.rs` files (plus `DESIGN.md` for the doc-drift
/// check) and lints them. Directories named `target`, `.git`, and
/// `corpus` are skipped (the corpus is deliberately full of
/// violations). A file whose first line is `//@ path: <virtual path>`
/// is analyzed as if it lived at that path — that is how corpus
/// snippets opt into path-scoped rules.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(lint_workspace_with(root, &Options::default())?.findings)
}

pub fn lint_workspace_with(root: &Path, opts: &Options) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect(root, root, &mut files)?;
    files.sort();
    let sources = files
        .iter()
        .map(|rel| {
            let content = std::fs::read_to_string(root.join(rel))?;
            let path = virtual_path(rel, &content);
            Ok((path, content))
        })
        .collect::<io::Result<Vec<_>>>()?;
    Ok(lint_sources_with(&sources, opts))
}

/// Applies a `//@ path:` remap directive if present.
fn virtual_path(rel: &str, content: &str) -> String {
    content
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("//@ path:"))
        .map(|p| p.trim().to_string())
        .unwrap_or_else(|| rel.to_string())
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" || name == "corpus" {
                continue;
            }
            collect(root, &path, out)?;
        } else if name.ends_with(".rs") || name == "DESIGN.md" {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Per-rule finding counts for the JSON report.
pub fn rule_counts(findings: &[Finding]) -> BTreeMap<&str, usize> {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for f in findings {
        *counts.entry(f.rule.as_str()).or_default() += 1;
    }
    counts
}
