//! Property-based tests: the paged B+tree must behave exactly like a
//! sorted multimap model under arbitrary interleavings of inserts,
//! deletes, point lookups, and range scans.

use std::sync::Arc;

use molap_btree::{BTree, BTreeConfig};
use molap_storage::{BufferPool, MemDisk};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, u64),
    Delete(i64, u64),
    Get(i64),
    ScanEq(i64),
    Range(i64, i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Narrow key space to force duplicates and collisions.
    let key = -20i64..20;
    let val = 0u64..8;
    prop_oneof![
        4 => (key.clone(), val.clone()).prop_map(|(k, v)| Op::Insert(k, v)),
        1 => (key.clone(), val).prop_map(|(k, v)| Op::Delete(k, v)),
        2 => key.clone().prop_map(Op::Get),
        2 => key.clone().prop_map(Op::ScanEq),
        1 => (key.clone(), key).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

/// Sorted-multimap reference model. Equal keys keep insertion order,
/// matching the tree's documented duplicate semantics.
#[derive(Default)]
struct Model {
    entries: Vec<(i64, u64)>,
}

impl Model {
    fn insert(&mut self, k: i64, v: u64) {
        let pos = self.entries.partition_point(|&(ek, _)| ek <= k);
        self.entries.insert(pos, (k, v));
    }

    fn delete(&mut self, k: i64, v: u64) -> bool {
        if let Some(i) = self.entries.iter().position(|&e| e == (k, v)) {
            self.entries.remove(i);
            true
        } else {
            false
        }
    }

    fn get(&self, k: i64) -> Option<u64> {
        self.entries.iter().find(|&&(ek, _)| ek == k).map(|e| e.1)
    }

    fn scan_eq(&self, k: i64) -> Vec<u64> {
        self.entries
            .iter()
            .filter(|&&(ek, _)| ek == k)
            .map(|e| e.1)
            .collect()
    }

    fn range(&self, lo: i64, hi: i64) -> Vec<(i64, u64)> {
        self.entries
            .iter()
            .copied()
            .filter(|&(k, _)| lo <= k && k <= hi)
            .collect()
    }
}

fn run_ops(ops: Vec<Op>, config: BTreeConfig) {
    let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 512));
    let mut tree = BTree::create_with(pool, config).unwrap();
    let mut model = Model::default();

    for op in ops {
        match op {
            Op::Insert(k, v) => {
                tree.insert(k, v).unwrap();
                model.insert(k, v);
            }
            Op::Delete(k, v) => {
                let a = tree.delete(k, v).unwrap();
                let b = model.delete(k, v);
                assert_eq!(a, b, "delete({k},{v})");
            }
            Op::Get(k) => {
                assert_eq!(tree.get(k).unwrap(), model.get(k), "get({k})");
            }
            Op::ScanEq(k) => {
                let mut a = tree.scan_eq(k).unwrap();
                let mut b = model.scan_eq(k);
                // Delete can reorder within a duplicate run relative to
                // the model (lazy deletion keeps physical order), so
                // compare as multisets.
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "scan_eq({k})");
            }
            Op::Range(lo, hi) => {
                let mut a = tree.scan_range(lo, hi).unwrap();
                let mut b = model.range(lo, hi);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "range({lo},{hi})");
            }
        }
        assert_eq!(tree.len(), model.entries.len() as u64);
    }
    // Final full-order check: keys must come out sorted.
    let all = tree.scan_range(i64::MIN, i64::MAX).unwrap();
    let keys: Vec<i64> = all.iter().map(|e| e.0).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tiny_fanout_matches_model(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        run_ops(ops, BTreeConfig { max_leaf_entries: 3, max_internal_keys: 2 });
    }

    #[test]
    fn medium_fanout_matches_model(ops in proptest::collection::vec(op_strategy(), 1..300)) {
        run_ops(ops, BTreeConfig { max_leaf_entries: 8, max_internal_keys: 5 });
    }

    #[test]
    fn bulk_load_equals_scan(mut keys in proptest::collection::vec(-50i64..50, 0..500)) {
        keys.sort_unstable();
        let entries: Vec<(i64, u64)> = keys.iter().enumerate().map(|(i, &k)| (k, i as u64)).collect();
        let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 512));
        let config = BTreeConfig { max_leaf_entries: 4, max_internal_keys: 3 };
        let tree = BTree::bulk_load(pool, config, entries.iter().copied()).unwrap();
        prop_assert_eq!(tree.scan_range(i64::MIN, i64::MAX).unwrap(), entries.clone());
        // Every key is findable.
        for &(k, _) in &entries {
            prop_assert!(tree.get(k).unwrap().is_some());
        }
    }
}
