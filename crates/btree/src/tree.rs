//! The B+tree proper: descent, insert with splits, scans, lazy delete,
//! and a packed bulk loader.

use std::sync::Arc;

use molap_storage::util::{read_u32, read_u64, write_u32, write_u64};
use molap_storage::{BufferPool, PageId, Result, StorageError};

use crate::node;

/// Node capacity configuration.
///
/// Defaults use the full page (`node::LEAF_CAP` / `node::INTERNAL_CAP`);
/// tests shrink them to force deep trees and frequent splits on small
/// data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BTreeConfig {
    /// Maximum entries per leaf (2 ..= `node::LEAF_CAP`).
    pub max_leaf_entries: usize,
    /// Maximum separator keys per internal node (2 ..= `node::INTERNAL_CAP`).
    pub max_internal_keys: usize,
}

impl Default for BTreeConfig {
    fn default() -> Self {
        BTreeConfig {
            max_leaf_entries: node::LEAF_CAP,
            max_internal_keys: node::INTERNAL_CAP,
        }
    }
}

impl BTreeConfig {
    fn validate(&self) {
        assert!(
            (2..=node::LEAF_CAP).contains(&self.max_leaf_entries),
            "max_leaf_entries out of range"
        );
        assert!(
            (2..=node::INTERNAL_CAP).contains(&self.max_internal_keys),
            "max_internal_keys out of range"
        );
    }
}

/// A paged B+tree with `i64` keys, `u64` values, and duplicate keys.
pub struct BTree {
    pool: Arc<BufferPool>,
    root: PageId,
    height: u32, // 0 = root is a leaf
    len: u64,
    config: BTreeConfig,
}

const META_BYTES: usize = 8 + 4 + 8 + 4 + 4;

impl BTree {
    /// Creates an empty tree with default node capacities.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self> {
        Self::create_with(pool, BTreeConfig::default())
    }

    /// Creates an empty tree with explicit node capacities.
    pub fn create_with(pool: Arc<BufferPool>, config: BTreeConfig) -> Result<Self> {
        config.validate();
        let root = pool.allocate_pages(1)?;
        {
            let mut page = pool.create_page(root)?;
            node::init_leaf(&mut page);
        }
        Ok(BTree {
            pool,
            root,
            height: 0,
            len: 0,
            config,
        })
    }

    /// Number of entries (including duplicates).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height: 0 when the root is a leaf.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The root page (for [`crate::SharedBTree`]'s lock-free mirror).
    pub(crate) fn root(&self) -> PageId {
        self.root
    }

    /// The pool this tree pages through.
    pub(crate) fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Every existing page an [`BTree::insert`] of `key` could mutate:
    /// the `internal_descend_index` descent path, leaf included. Split
    /// targets and new roots are fresh pages — unreachable until the
    /// insert links them — so they need no coverage.
    pub(crate) fn insert_path(&self, key: i64) -> Result<Vec<PageId>> {
        let mut path = Vec::with_capacity(self.height as usize + 1);
        let mut pid = self.root;
        path.push(pid);
        for _ in 0..self.height {
            let page = self.pool.fetch(pid)?;
            let idx = node::internal_descend_index(&page, key);
            pid = node::internal_child(&page, idx);
            path.push(pid);
        }
        Ok(path)
    }

    /// Every existing page a [`BTree::delete`] of `key` could mutate:
    /// the `find_run_start` descent path plus the leaf-chain walk
    /// through the key's duplicate run (the lazy delete scans right
    /// until it passes `key`; it mutates at most one of those leaves,
    /// but which one depends on the stored values).
    pub(crate) fn delete_path(&self, key: i64) -> Result<Vec<PageId>> {
        let mut path = Vec::with_capacity(self.height as usize + 2);
        let mut pid = self.root;
        path.push(pid);
        for _ in 0..self.height {
            let page = self.pool.fetch(pid)?;
            let idx = node::internal_scan_index(&page, key);
            pid = node::internal_child(&page, idx);
            path.push(pid);
        }
        loop {
            let page = self.pool.fetch(pid)?;
            let n = node::count(&page);
            if n > 0 && node::leaf_key(&page, n - 1) > key {
                break; // the delete stops inside this leaf
            }
            match node::next_leaf(&page) {
                Some(next) => {
                    pid = next;
                    path.push(pid);
                }
                None => break,
            }
        }
        Ok(path)
    }

    /// Serializes root/height/len/config so a higher layer can persist
    /// and later [`BTree::from_meta_bytes`] the tree over the same pool.
    pub fn meta_to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; META_BYTES];
        write_u64(&mut out, 0, self.root.0);
        write_u32(&mut out, 8, self.height);
        write_u64(&mut out, 12, self.len);
        write_u32(&mut out, 20, self.config.max_leaf_entries as u32);
        write_u32(&mut out, 24, self.config.max_internal_keys as u32);
        out
    }

    /// Restores a tree from [`BTree::meta_to_bytes`] output.
    pub fn from_meta_bytes(pool: Arc<BufferPool>, bytes: &[u8]) -> Result<Self> {
        if bytes.len() < META_BYTES {
            return Err(StorageError::Corrupt("btree meta truncated"));
        }
        let config = BTreeConfig {
            max_leaf_entries: read_u32(bytes, 20) as usize,
            max_internal_keys: read_u32(bytes, 24) as usize,
        };
        config.validate();
        Ok(BTree {
            pool,
            root: PageId(read_u64(bytes, 0)),
            height: read_u32(bytes, 8),
            len: read_u64(bytes, 12),
            config,
        })
    }

    // ------------------------------------------------------------ lookups

    /// Returns the value of the first entry with `key`, if any.
    pub fn get(&self, key: i64) -> Result<Option<u64>> {
        let (pid, pos) = self.find_run_start(key)?;
        let mut pid = pid;
        let mut pos = pos;
        loop {
            let page = self.pool.fetch(pid)?;
            if pos < node::count(&page) {
                return Ok(
                    (node::leaf_key(&page, pos) == key).then(|| node::leaf_value(&page, pos))
                );
            }
            match node::next_leaf(&page) {
                Some(next) => {
                    pid = next;
                    pos = 0;
                }
                None => return Ok(None),
            }
        }
    }

    /// Returns every value stored under `key`, in insertion order.
    ///
    /// This is the §4.2 primitive: a selected attribute value becomes the
    /// list of array index positions that join with it.
    pub fn scan_eq(&self, key: i64) -> Result<Vec<u64>> {
        let mut out = Vec::new();
        self.for_each_in_range(key, key, |_, v| out.push(v))?;
        Ok(out)
    }

    /// Returns all `(key, value)` entries with `lo <= key <= hi`, in key
    /// order.
    pub fn scan_range(&self, lo: i64, hi: i64) -> Result<Vec<(i64, u64)>> {
        let mut out = Vec::new();
        self.for_each_in_range(lo, hi, |k, v| out.push((k, v)))?;
        Ok(out)
    }

    /// Calls `f(key, value)` for every entry with `lo <= key <= hi`.
    pub fn for_each_in_range<F: FnMut(i64, u64)>(&self, lo: i64, hi: i64, mut f: F) -> Result<()> {
        if lo > hi {
            return Ok(());
        }
        let (mut pid, mut pos) = self.find_run_start(lo)?;
        loop {
            let page = self.pool.fetch(pid)?;
            let n = node::count(&page);
            while pos < n {
                let k = node::leaf_key(&page, pos);
                if k > hi {
                    return Ok(());
                }
                f(k, node::leaf_value(&page, pos));
                pos += 1;
            }
            match node::next_leaf(&page) {
                Some(next) => {
                    pid = next;
                    pos = 0;
                }
                None => return Ok(()),
            }
        }
    }

    /// Calls `f(key, value)` for every entry, in key order.
    pub fn for_each<F: FnMut(i64, u64)>(&self, f: F) -> Result<()> {
        self.for_each_in_range(i64::MIN, i64::MAX, f)
    }

    /// Descends to the leftmost leaf position that can hold `key` and
    /// returns `(leaf page, lower-bound index)`.
    fn find_run_start(&self, key: i64) -> Result<(PageId, usize)> {
        let mut pid = self.root;
        for _ in 0..self.height {
            let page = self.pool.fetch(pid)?;
            debug_assert!(!node::is_leaf(&page));
            let idx = node::internal_scan_index(&page, key);
            pid = node::internal_child(&page, idx);
        }
        let page = self.pool.fetch(pid)?;
        debug_assert!(node::is_leaf(&page));
        Ok((pid, node::leaf_lower_bound(&page, key)))
    }

    // ------------------------------------------------------------ inserts

    /// Inserts `(key, value)`. Duplicate keys are allowed; equal keys
    /// keep insertion order.
    pub fn insert(&mut self, key: i64, value: u64) -> Result<()> {
        if let Some((sep, right)) = self.insert_rec(self.root, self.height, key, value)? {
            let new_root = self.pool.allocate_pages(1)?;
            {
                let mut page = self.pool.create_page(new_root)?;
                node::init_internal(&mut page);
                node::internal_set_child0(&mut page, self.root);
                node::internal_insert_pair_at(&mut page, 0, sep, right);
            }
            self.root = new_root;
            self.height += 1;
        }
        self.len += 1;
        Ok(())
    }

    fn insert_rec(
        &mut self,
        pid: PageId,
        level: u32,
        key: i64,
        value: u64,
    ) -> Result<Option<(i64, PageId)>> {
        if level == 0 {
            return self.insert_leaf(pid, key, value);
        }
        let (child, idx) = {
            let page = self.pool.fetch(pid)?;
            let idx = node::internal_descend_index(&page, key);
            (node::internal_child(&page, idx), idx)
        };
        let Some((sep, right)) = self.insert_rec(child, level - 1, key, value)? else {
            return Ok(None);
        };
        // Child split: hang (sep, right) off this node at position idx.
        let full = {
            let page = self.pool.fetch(pid)?;
            node::count(&page) >= self.config.max_internal_keys
        };
        if !full {
            let mut page = self.pool.fetch_mut(pid)?;
            node::internal_insert_pair_at(&mut page, idx, sep, right);
            return Ok(None);
        }
        // Split this internal node, then place the pending pair
        // immediately to the right of the child that split (child index
        // `idx`). Position must NOT be recomputed by key search: with
        // duplicate separator keys that can land the new child after the
        // wrong sibling and break the separator invariant.
        let new_pid = self.pool.allocate_pages(1)?;
        let push_up = {
            let mut src = self.pool.fetch_mut(pid)?;
            let mut dst = self.pool.create_page(new_pid)?;
            node::init_internal(&mut dst);
            let at = node::count(&src) / 2;
            let push_up = node::internal_split_into(&mut src, &mut dst, at);
            if idx <= at {
                // Child stayed in src (src now holds children 0..=at).
                node::internal_insert_pair_at(&mut src, idx, sep, right);
            } else {
                // Child moved to dst as its child `idx - (at + 1)`.
                node::internal_insert_pair_at(&mut dst, idx - (at + 1), sep, right);
            }
            push_up
        };
        Ok(Some((push_up, new_pid)))
    }

    fn insert_leaf(&mut self, pid: PageId, key: i64, value: u64) -> Result<Option<(i64, PageId)>> {
        let full = {
            let page = self.pool.fetch(pid)?;
            node::count(&page) >= self.config.max_leaf_entries
        };
        if !full {
            let mut page = self.pool.fetch_mut(pid)?;
            let pos = node::leaf_upper_bound(&page, key);
            node::leaf_insert_at(&mut page, pos, key, value);
            return Ok(None);
        }
        let new_pid = self.pool.allocate_pages(1)?;
        let sep = {
            let mut src = self.pool.fetch_mut(pid)?;
            let mut dst = self.pool.create_page(new_pid)?;
            node::init_leaf(&mut dst);
            let at = node::count(&src) / 2;
            node::leaf_split_into(&mut src, &mut dst, at);
            node::set_next_leaf(&mut dst, node::next_leaf(&src));
            node::set_next_leaf(&mut src, Some(new_pid));
            let sep = node::leaf_key(&dst, 0);
            if key >= sep {
                let pos = node::leaf_upper_bound(&dst, key);
                node::leaf_insert_at(&mut dst, pos, key, value);
            } else {
                let pos = node::leaf_upper_bound(&src, key);
                node::leaf_insert_at(&mut src, pos, key, value);
            }
            sep
        };
        Ok(Some((sep, new_pid)))
    }

    // ------------------------------------------------------------ deletes

    /// Removes the first entry equal to `(key, value)`; returns whether
    /// one was found. Leaves are never rebalanced (lazy deletion).
    pub fn delete(&mut self, key: i64, value: u64) -> Result<bool> {
        let (mut pid, mut pos) = self.find_run_start(key)?;
        loop {
            let found = {
                let page = self.pool.fetch(pid)?;
                let n = node::count(&page);
                let mut hit = None;
                while pos < n {
                    let k = node::leaf_key(&page, pos);
                    if k > key {
                        return Ok(false);
                    }
                    if k == key && node::leaf_value(&page, pos) == value {
                        hit = Some(pos);
                        break;
                    }
                    pos += 1;
                }
                match hit {
                    Some(p) => Some(p),
                    None => match node::next_leaf(&page) {
                        Some(next) => {
                            pid = next;
                            pos = 0;
                            None
                        }
                        None => return Ok(false),
                    },
                }
            };
            if let Some(p) = found {
                let mut page = self.pool.fetch_mut(pid)?;
                node::leaf_remove_at(&mut page, p);
                self.len -= 1;
                return Ok(true);
            }
        }
    }

    // -------------------------------------------------------- diagnostics

    /// Renders the node structure as indented text (for debugging and
    /// invariant checks in tests). Internal nodes print their separator
    /// keys; leaves print `key:value` entries and their next pointer.
    pub fn debug_dump(&self) -> Result<String> {
        let mut out = String::new();
        self.dump_rec(self.root, self.height, 0, &mut out)?;
        Ok(out)
    }

    fn dump_rec(&self, pid: PageId, level: u32, indent: usize, out: &mut String) -> Result<()> {
        use std::fmt::Write;
        let page = self.pool.fetch(pid)?;
        let pad = "  ".repeat(indent);
        if level == 0 {
            let entries: Vec<String> = (0..node::count(&page))
                .map(|i| {
                    format!(
                        "{}:{}",
                        node::leaf_key(&page, i),
                        node::leaf_value(&page, i)
                    )
                })
                .collect();
            let next = node::next_leaf(&page).map_or("-".to_string(), |p| p.to_string());
            writeln!(out, "{pad}leaf {pid} [{}] -> {next}", entries.join(", ")).unwrap();
        } else {
            let keys: Vec<String> = (0..node::count(&page))
                .map(|i| node::internal_key(&page, i).to_string())
                .collect();
            writeln!(out, "{pad}internal {pid} seps=[{}]", keys.join(", ")).unwrap();
            let n = node::count(&page);
            let children: Vec<PageId> = (0..=n).map(|i| node::internal_child(&page, i)).collect();
            drop(page);
            for child in children {
                self.dump_rec(child, level - 1, indent + 1, out)?;
            }
        }
        Ok(())
    }

    // ---------------------------------------------------------- bulk load

    /// Builds a packed tree from entries that MUST be sorted by key
    /// (duplicates allowed, kept in input order). Roughly an order of
    /// magnitude faster than repeated [`BTree::insert`], and produces
    /// full leaves — this is how the dimension B-trees are built when an
    /// OLAP array is loaded.
    pub fn bulk_load<I>(pool: Arc<BufferPool>, config: BTreeConfig, entries: I) -> Result<Self>
    where
        I: IntoIterator<Item = (i64, u64)>,
    {
        config.validate();
        let mut len = 0u64;
        // Level 0: packed leaves.
        let mut level: Vec<(i64, PageId)> = Vec::new();
        let mut prev_leaf: Option<PageId> = None;
        let mut cur: Vec<(i64, u64)> = Vec::with_capacity(config.max_leaf_entries);
        let mut last_key = i64::MIN;

        let flush_leaf = |cur: &mut Vec<(i64, u64)>,
                          prev_leaf: &mut Option<PageId>,
                          level: &mut Vec<(i64, PageId)>|
         -> Result<()> {
            if cur.is_empty() {
                return Ok(());
            }
            let pid = pool.allocate_pages(1)?;
            {
                let mut page = pool.create_page(pid)?;
                node::init_leaf(&mut page);
                for (i, &(k, v)) in cur.iter().enumerate() {
                    node::leaf_set(&mut page, i, k, v);
                }
                node::set_count(&mut page, cur.len());
            }
            if let Some(prev) = *prev_leaf {
                let mut page = pool.fetch_mut(prev)?;
                node::set_next_leaf(&mut page, Some(pid));
            }
            level.push((cur[0].0, pid));
            *prev_leaf = Some(pid);
            cur.clear();
            Ok(())
        };

        for (k, v) in entries {
            debug_assert!(k >= last_key, "bulk_load input must be sorted by key");
            last_key = k;
            len += 1;
            cur.push((k, v));
            if cur.len() == config.max_leaf_entries {
                flush_leaf(&mut cur, &mut prev_leaf, &mut level)?;
            }
        }
        flush_leaf(&mut cur, &mut prev_leaf, &mut level)?;

        if level.is_empty() {
            // No entries at all: fall back to an empty tree.
            return Self::create_with(pool, config);
        }

        // Upper levels: pack children under internal nodes; the
        // separator for a child is its subtree's first key, matching the
        // invariant split maintains.
        let mut height = 0u32;
        while level.len() > 1 {
            height += 1;
            let mut next_level: Vec<(i64, PageId)> = Vec::new();
            let fanout = config.max_internal_keys + 1;
            for group in level.chunks(fanout) {
                let pid = pool.allocate_pages(1)?;
                let mut page = pool.create_page(pid)?;
                node::init_internal(&mut page);
                node::internal_set_child0(&mut page, group[0].1);
                for (i, &(k, child)) in group[1..].iter().enumerate() {
                    node::internal_insert_pair_at(&mut page, i, k, child);
                }
                next_level.push((group[0].0, pid));
            }
            level = next_level;
        }

        Ok(BTree {
            pool,
            root: level[0].1,
            height,
            len,
            config,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use molap_storage::MemDisk;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 256))
    }

    fn small_config() -> BTreeConfig {
        BTreeConfig {
            max_leaf_entries: 4,
            max_internal_keys: 3,
        }
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = BTree::create(pool()).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.get(1).unwrap(), None);
        assert_eq!(t.scan_eq(1).unwrap(), Vec::<u64>::new());
        assert_eq!(t.scan_range(0, 100).unwrap(), vec![]);
    }

    #[test]
    fn insert_and_get_without_splits() {
        let mut t = BTree::create(pool()).unwrap();
        for k in [5i64, 1, 9, 3] {
            t.insert(k, (k * 10) as u64).unwrap();
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.get(3).unwrap(), Some(30));
        assert_eq!(t.get(4).unwrap(), None);
        assert_eq!(t.scan_range(2, 9).unwrap(), vec![(3, 30), (5, 50), (9, 90)]);
    }

    #[test]
    fn splits_produce_correct_ordering() {
        let mut t = BTree::create_with(pool(), small_config()).unwrap();
        let keys: Vec<i64> = (0..200).map(|i| (i * 37) % 200).collect();
        for &k in &keys {
            t.insert(k, k as u64).unwrap();
        }
        assert!(t.height() >= 2, "small fanout must grow a deep tree");
        let all = t.scan_range(i64::MIN, i64::MAX).unwrap();
        assert_eq!(all.len(), 200);
        let mut expect: Vec<i64> = keys.clone();
        expect.sort_unstable();
        assert_eq!(all.iter().map(|e| e.0).collect::<Vec<_>>(), expect);
        for k in 0..200 {
            assert_eq!(t.get(k).unwrap(), Some(k as u64), "key {k}");
        }
    }

    #[test]
    fn duplicates_keep_insertion_order_across_splits() {
        let mut t = BTree::create_with(pool(), small_config()).unwrap();
        // Long duplicate runs that definitely straddle leaves.
        for round in 0..10u64 {
            for key in [7i64, 3, 7, 11] {
                t.insert(key, round * 100 + key as u64).unwrap();
            }
        }
        let sevens = t.scan_eq(7).unwrap();
        assert_eq!(sevens.len(), 20);
        // Values for key 7 were inserted as r*100+7 twice per round.
        let mut expect: Vec<u64> = Vec::new();
        for round in 0..10u64 {
            expect.push(round * 100 + 7);
            expect.push(round * 100 + 7);
        }
        // Insertion order is preserved within the run.
        assert_eq!(sevens, expect);
        assert_eq!(t.scan_eq(3).unwrap().len(), 10);
        assert_eq!(t.scan_eq(5).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn range_scan_boundaries_are_inclusive() {
        let mut t = BTree::create_with(pool(), small_config()).unwrap();
        for k in 0..50 {
            t.insert(k, k as u64).unwrap();
        }
        let r = t.scan_range(10, 12).unwrap();
        assert_eq!(r, vec![(10, 10), (11, 11), (12, 12)]);
        assert_eq!(t.scan_range(12, 10).unwrap(), vec![]);
        assert_eq!(t.scan_range(-5, 0).unwrap(), vec![(0, 0)]);
        assert_eq!(t.scan_range(49, 99).unwrap(), vec![(49, 49)]);
    }

    #[test]
    fn negative_keys_work() {
        let mut t = BTree::create_with(pool(), small_config()).unwrap();
        for k in -20..20 {
            t.insert(k, (k + 100) as u64).unwrap();
        }
        assert_eq!(t.get(-20).unwrap(), Some(80));
        assert_eq!(t.scan_range(-2, 1).unwrap().len(), 4);
    }

    #[test]
    fn delete_removes_exact_pairs_lazily() {
        let mut t = BTree::create_with(pool(), small_config()).unwrap();
        for k in 0..30 {
            t.insert(k, k as u64).unwrap();
            t.insert(k, (k + 1000) as u64).unwrap();
        }
        assert!(t.delete(5, 5).unwrap());
        assert!(!t.delete(5, 5).unwrap(), "already gone");
        assert_eq!(t.scan_eq(5).unwrap(), vec![1005]);
        assert!(t.delete(5, 1005).unwrap());
        assert_eq!(t.scan_eq(5).unwrap(), Vec::<u64>::new());
        assert_eq!(t.len(), 58);
        // Neighbours untouched.
        assert_eq!(t.scan_eq(4).unwrap(), vec![4, 1004]);
        assert_eq!(t.scan_eq(6).unwrap(), vec![6, 1006]);
    }

    #[test]
    fn delete_nonexistent_key_is_noop() {
        let mut t = BTree::create(pool()).unwrap();
        t.insert(1, 1).unwrap();
        assert!(!t.delete(2, 2).unwrap());
        assert!(!t.delete(1, 99).unwrap());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn bulk_load_matches_incremental_inserts() {
        let p = pool();
        let entries: Vec<(i64, u64)> = (0..1000).map(|i| (i / 3, i as u64)).collect();
        let bulk = BTree::bulk_load(p.clone(), small_config(), entries.iter().copied()).unwrap();

        let mut incr = BTree::create_with(p, small_config()).unwrap();
        for &(k, v) in &entries {
            incr.insert(k, v).unwrap();
        }
        assert_eq!(bulk.len(), incr.len());
        assert_eq!(
            bulk.scan_range(i64::MIN, i64::MAX).unwrap(),
            incr.scan_range(i64::MIN, i64::MAX).unwrap()
        );
        assert_eq!(bulk.scan_eq(100).unwrap(), incr.scan_eq(100).unwrap());
    }

    #[test]
    fn bulk_load_empty_input() {
        let t = BTree::bulk_load(pool(), BTreeConfig::default(), std::iter::empty()).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.get(0).unwrap(), None);
    }

    #[test]
    fn meta_roundtrip_restores_tree() {
        let p = pool();
        let mut t = BTree::create_with(p.clone(), small_config()).unwrap();
        for k in 0..100 {
            t.insert(k, k as u64 * 2).unwrap();
        }
        let meta = t.meta_to_bytes();
        let restored = BTree::from_meta_bytes(p, &meta).unwrap();
        assert_eq!(restored.len(), 100);
        assert_eq!(restored.height(), t.height());
        assert_eq!(restored.get(42).unwrap(), Some(84));
        assert!(BTree::from_meta_bytes(pool(), &[0u8; 4]).is_err());
    }

    #[test]
    fn large_default_fanout_stays_shallow() {
        let mut t = BTree::create(pool()).unwrap();
        for k in 0..2000 {
            t.insert(k, k as u64).unwrap();
        }
        assert!(
            t.height() <= 1,
            "2000 entries fit in two levels at 511 fanout"
        );
        assert_eq!(t.scan_range(0, 1999).unwrap().len(), 2000);
    }
}
