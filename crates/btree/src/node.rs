//! On-page node layout.
//!
//! ```text
//! byte 0        : node kind (0 = internal, 1 = leaf)
//! bytes 2..4    : entry count (u16)
//! bytes 8..16   : next-leaf page id (leaves only; u64::MAX = none)
//! bytes 16..    : payload
//! ```
//!
//! Leaf payload: `count` entries of `(key: i64, value: u64)`, 16 bytes
//! each, sorted by key (duplicates adjacent, in insertion order).
//!
//! Internal payload: leftmost child page id (u64) followed by `count`
//! pairs of `(separator key: i64, child page id: u64)`. Child `i+1`
//! holds keys `>= separator[i]` (with duplicates allowed to spill right).

use molap_storage::util::{read_i64, read_u16, read_u64, write_i64, write_u16, write_u64};
use molap_storage::{PageBuf, PageId, PAGE_SIZE};

pub const HEADER: usize = 16;
pub const ENTRY: usize = 16;
/// Hard capacity of a leaf page: 511 entries at 8 KiB.
pub const LEAF_CAP: usize = (PAGE_SIZE - HEADER) / ENTRY;
/// Hard capacity (in separator keys) of an internal page: 510 at 8 KiB.
pub const INTERNAL_CAP: usize = (PAGE_SIZE - HEADER - 8) / ENTRY;

const KIND_INTERNAL: u8 = 0;
const KIND_LEAF: u8 = 1;
const NO_NEXT: u64 = u64::MAX;

#[inline]
pub fn is_leaf(buf: &PageBuf) -> bool {
    buf[0] == KIND_LEAF
}

#[inline]
pub fn count(buf: &PageBuf) -> usize {
    read_u16(buf, 2) as usize
}

#[inline]
pub fn set_count(buf: &mut PageBuf, n: usize) {
    debug_assert!(n <= u16::MAX as usize);
    write_u16(buf, 2, n as u16);
}

pub fn init_leaf(buf: &mut PageBuf) {
    buf[0] = KIND_LEAF;
    set_count(buf, 0);
    write_u64(buf, 8, NO_NEXT);
}

pub fn init_internal(buf: &mut PageBuf) {
    buf[0] = KIND_INTERNAL;
    set_count(buf, 0);
    write_u64(buf, 8, NO_NEXT);
}

#[inline]
pub fn next_leaf(buf: &PageBuf) -> Option<PageId> {
    let v = read_u64(buf, 8);
    (v != NO_NEXT).then_some(PageId(v))
}

#[inline]
pub fn set_next_leaf(buf: &mut PageBuf, next: Option<PageId>) {
    write_u64(buf, 8, next.map_or(NO_NEXT, |p| p.0));
}

// ---------------------------------------------------------------- leaves

#[inline]
pub fn leaf_key(buf: &PageBuf, i: usize) -> i64 {
    read_i64(buf, HEADER + i * ENTRY)
}

#[inline]
pub fn leaf_value(buf: &PageBuf, i: usize) -> u64 {
    read_u64(buf, HEADER + i * ENTRY + 8)
}

#[inline]
pub fn leaf_set(buf: &mut PageBuf, i: usize, key: i64, value: u64) {
    write_i64(buf, HEADER + i * ENTRY, key);
    write_u64(buf, HEADER + i * ENTRY + 8, value);
}

/// First index whose key is `>= key` (lower bound).
pub fn leaf_lower_bound(buf: &PageBuf, key: i64) -> usize {
    let n = count(buf);
    let (mut lo, mut hi) = (0, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if leaf_key(buf, mid) < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// First index whose key is `> key` (upper bound).
pub fn leaf_upper_bound(buf: &PageBuf, key: i64) -> usize {
    let n = count(buf);
    let (mut lo, mut hi) = (0, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if leaf_key(buf, mid) <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Inserts `(key, value)` at position `pos`, shifting later entries right.
pub fn leaf_insert_at(buf: &mut PageBuf, pos: usize, key: i64, value: u64) {
    let n = count(buf);
    debug_assert!(pos <= n && n < LEAF_CAP);
    let src = HEADER + pos * ENTRY;
    buf.copy_within(src..HEADER + n * ENTRY, src + ENTRY);
    leaf_set(buf, pos, key, value);
    set_count(buf, n + 1);
}

/// Removes the entry at `pos`, shifting later entries left.
pub fn leaf_remove_at(buf: &mut PageBuf, pos: usize) {
    let n = count(buf);
    debug_assert!(pos < n);
    let dst = HEADER + pos * ENTRY;
    buf.copy_within(dst + ENTRY..HEADER + n * ENTRY, dst);
    set_count(buf, n - 1);
}

/// Moves entries `[at, count)` of `src` to the front of empty leaf `dst`.
pub fn leaf_split_into(src: &mut PageBuf, dst: &mut PageBuf, at: usize) {
    let n = count(src);
    debug_assert!(at <= n && count(dst) == 0);
    let moved = n - at;
    dst[HEADER..HEADER + moved * ENTRY]
        .copy_from_slice(&src[HEADER + at * ENTRY..HEADER + n * ENTRY]);
    set_count(dst, moved);
    set_count(src, at);
}

// -------------------------------------------------------------- internals

#[inline]
pub fn internal_child(buf: &PageBuf, i: usize) -> PageId {
    // Child 0 sits at HEADER; child i>0 is the pair slot i-1's pointer.
    if i == 0 {
        PageId(read_u64(buf, HEADER))
    } else {
        PageId(read_u64(buf, HEADER + 8 + (i - 1) * ENTRY + 8))
    }
}

#[inline]
pub fn internal_key(buf: &PageBuf, i: usize) -> i64 {
    read_i64(buf, HEADER + 8 + i * ENTRY)
}

#[inline]
pub fn internal_set_child0(buf: &mut PageBuf, child: PageId) {
    write_u64(buf, HEADER, child.0);
}

#[inline]
pub fn internal_set_pair(buf: &mut PageBuf, i: usize, key: i64, child: PageId) {
    write_i64(buf, HEADER + 8 + i * ENTRY, key);
    write_u64(buf, HEADER + 8 + i * ENTRY + 8, child.0);
}

/// Child index to descend into for `key`: the first separator `> key`
/// bounds the search, so equal keys go *right* of their separator and
/// duplicate runs stay reachable from their lower bound... except that a
/// run can span the separator; callers compensate by also checking the
/// preceding leaf chain via [`leaf_lower_bound`] semantics. With
/// separators chosen at split time as the first key of the right node,
/// descending to the first child whose separator is `> key` lands on the
/// leftmost leaf that can contain `key`.
pub fn internal_descend_index(buf: &PageBuf, key: i64) -> usize {
    let n = count(buf);
    let (mut lo, mut hi) = (0, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if internal_key(buf, mid) <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Leftmost child index that can contain `key` (strict lower bound over
/// separators): used by ordered scans so duplicate runs that straddle a
/// separator are not skipped.
pub fn internal_scan_index(buf: &PageBuf, key: i64) -> usize {
    let n = count(buf);
    let (mut lo, mut hi) = (0, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if internal_key(buf, mid) < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Inserts separator pair `(key, child)` at pair position `pos`.
pub fn internal_insert_pair_at(buf: &mut PageBuf, pos: usize, key: i64, child: PageId) {
    let n = count(buf);
    debug_assert!(pos <= n && n < INTERNAL_CAP);
    let src = HEADER + 8 + pos * ENTRY;
    buf.copy_within(src..HEADER + 8 + n * ENTRY, src + ENTRY);
    internal_set_pair(buf, pos, key, child);
    set_count(buf, n + 1);
}

/// Splits a full internal node: pairs `[at+1, count)` move to `dst`,
/// pair `at`'s key is returned as the separator to push up, and pair
/// `at`'s child becomes `dst`'s leftmost child.
pub fn internal_split_into(src: &mut PageBuf, dst: &mut PageBuf, at: usize) -> i64 {
    let n = count(src);
    debug_assert!(at < n && count(dst) == 0);
    let push_up = internal_key(src, at);
    internal_set_child0(dst, internal_child(src, at + 1));
    let moved = n - at - 1;
    dst[HEADER + 8..HEADER + 8 + moved * ENTRY]
        .copy_from_slice(&src[HEADER + 8 + (at + 1) * ENTRY..HEADER + 8 + n * ENTRY]);
    set_count(dst, moved);
    set_count(src, at);
    push_up
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_with(keys: &[(i64, u64)]) -> Box<PageBuf> {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        init_leaf(&mut buf);
        for (i, &(k, v)) in keys.iter().enumerate() {
            leaf_set(&mut buf, i, k, v);
        }
        set_count(&mut buf, keys.len());
        buf
    }

    #[test]
    fn leaf_bounds_handle_duplicates() {
        let buf = leaf_with(&[(1, 0), (3, 1), (3, 2), (3, 3), (7, 4)]);
        assert_eq!(leaf_lower_bound(&buf, 3), 1);
        assert_eq!(leaf_upper_bound(&buf, 3), 4);
        assert_eq!(leaf_lower_bound(&buf, 0), 0);
        assert_eq!(leaf_upper_bound(&buf, 100), 5);
        assert_eq!(leaf_lower_bound(&buf, 4), 4);
    }

    #[test]
    fn leaf_insert_and_remove_shift_correctly() {
        let mut buf = leaf_with(&[(1, 10), (5, 50)]);
        leaf_insert_at(&mut buf, 1, 3, 30);
        assert_eq!(count(&buf), 3);
        assert_eq!(
            (0..3)
                .map(|i| (leaf_key(&buf, i), leaf_value(&buf, i)))
                .collect::<Vec<_>>(),
            vec![(1, 10), (3, 30), (5, 50)]
        );
        leaf_remove_at(&mut buf, 0);
        assert_eq!(
            (0..2).map(|i| leaf_key(&buf, i)).collect::<Vec<_>>(),
            vec![3, 5]
        );
    }

    #[test]
    fn leaf_split_moves_upper_half() {
        let mut src = leaf_with(&[(1, 1), (2, 2), (3, 3), (4, 4)]);
        let mut dst = Box::new([0u8; PAGE_SIZE]);
        init_leaf(&mut dst);
        leaf_split_into(&mut src, &mut dst, 2);
        assert_eq!(count(&src), 2);
        assert_eq!(count(&dst), 2);
        assert_eq!(leaf_key(&dst, 0), 3);
        assert_eq!(leaf_value(&dst, 1), 4);
    }

    #[test]
    fn internal_layout_roundtrips() {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        init_internal(&mut buf);
        internal_set_child0(&mut buf, PageId(100));
        internal_insert_pair_at(&mut buf, 0, 10, PageId(101));
        internal_insert_pair_at(&mut buf, 1, 30, PageId(103));
        internal_insert_pair_at(&mut buf, 1, 20, PageId(102));
        assert_eq!(count(&buf), 3);
        assert_eq!(internal_child(&buf, 0), PageId(100));
        assert_eq!(internal_key(&buf, 0), 10);
        assert_eq!(internal_child(&buf, 1), PageId(101));
        assert_eq!(internal_key(&buf, 1), 20);
        assert_eq!(internal_child(&buf, 2), PageId(102));
        assert_eq!(internal_child(&buf, 3), PageId(103));
    }

    #[test]
    fn descend_vs_scan_index_on_duplicates() {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        init_internal(&mut buf);
        internal_set_child0(&mut buf, PageId(0));
        internal_insert_pair_at(&mut buf, 0, 10, PageId(1));
        internal_insert_pair_at(&mut buf, 1, 10, PageId(2));
        internal_insert_pair_at(&mut buf, 2, 20, PageId(3));
        // Inserting key 10 goes right of all equal separators.
        assert_eq!(internal_descend_index(&buf, 10), 2);
        // Scanning for key 10 starts at the leftmost possible child.
        assert_eq!(internal_scan_index(&buf, 10), 0);
        assert_eq!(internal_descend_index(&buf, 15), 2);
        assert_eq!(internal_descend_index(&buf, 25), 3);
    }

    #[test]
    fn internal_split_pushes_middle_key_up() {
        let mut src = Box::new([0u8; PAGE_SIZE]);
        init_internal(&mut src);
        internal_set_child0(&mut src, PageId(0));
        for i in 0..5 {
            internal_insert_pair_at(&mut src, i, (i as i64 + 1) * 10, PageId(i as u64 + 1));
        }
        let mut dst = Box::new([0u8; PAGE_SIZE]);
        init_internal(&mut dst);
        let sep = internal_split_into(&mut src, &mut dst, 2);
        assert_eq!(sep, 30);
        assert_eq!(count(&src), 2);
        assert_eq!(count(&dst), 2);
        assert_eq!(internal_child(&dst, 0), PageId(3));
        assert_eq!(internal_key(&dst, 0), 40);
        assert_eq!(internal_child(&dst, 2), PageId(5));
    }

    #[test]
    fn capacities_fit_a_page() {
        assert_eq!(LEAF_CAP, 511);
        assert_eq!(INTERNAL_CAP, 510);
        const { assert!(HEADER + LEAF_CAP * ENTRY <= PAGE_SIZE) };
        const { assert!(HEADER + 8 + INTERNAL_CAP * ENTRY <= PAGE_SIZE) };
    }

    #[test]
    fn next_leaf_chain_encoding() {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        init_leaf(&mut buf);
        assert_eq!(next_leaf(&buf), None);
        set_next_leaf(&mut buf, Some(PageId(9)));
        assert_eq!(next_leaf(&buf), Some(PageId(9)));
        set_next_leaf(&mut buf, None);
        assert_eq!(next_leaf(&buf), None);
    }
}
