//! [`SharedBTree`]: the concurrent façade over [`BTree`], with
//! optimistically lock-coupled probes.
//!
//! A bare [`BTree`] takes `&mut self` for writes, so sharing one across
//! threads means wrapping it in a mutex — and then every §4.2 index
//! probe serializes on that mutex even though probes vastly outnumber
//! writes. `SharedBTree` keeps the mutex for writers (the field name
//! `tree` is its workspace lock-order rank) but lets readers descend
//! the tree without it, LeanStore-style:
//!
//! * a fixed array of [`OptLock`] **version stripes** (`tree_v`, also a
//!   lock-order rank) covers the tree's pages by `fib_shard(pid)`;
//! * a writer locks `tree`, pre-walks the descent path its mutation
//!   could touch ([`BTree::insert_path`] / [`BTree::delete_path`]),
//!   acquires those pages' stripes exclusively **in ascending stripe
//!   order** (so concurrent writers of overlapping paths cannot build
//!   an ABBA cycle in the runtime lock-order graph), then mutates, and
//!   finally republishes the packed root/height word *before* the
//!   stripes unlock — fresh split pages need no stripe: they are
//!   unreachable until the writer links them, which happens while it
//!   still holds the parent's and sibling's stripes;
//! * a reader version-couples down the tree: pin the child stripe's
//!   version, re-validate the parent stripe (so the pointer it
//!   followed was still current *after* the child version was pinned),
//!   fetch the page — I/O happens with no guard held, only `(stripe,
//!   seen)` numbers re-checked via [`OptLock::still_valid`] — read it
//!   under the frame's read latch (the latch makes the byte read
//!   atomic; the version decides logical currency), and validate again
//!   before trusting anything it read.
//!
//! A failed validation restarts the descent from the (re-read) root;
//! after [`MAX_RESTARTS`] conflicts the probe escalates to the `tree`
//! mutex and runs the plain [`BTree::get`]. Probe outcomes are
//! reported per tree via [`IoStats::opt_btree`].
//!
//! Reads are equivalent to mutex-serialized reads: every page's bytes
//! are read atomically under its frame latch, and the version coupling
//! guarantees the *route* to those bytes was current while they were
//! read — a probe racing a split either validates (it saw a consistent
//! parent/child pair: the splitter holds both stripes at once) or
//! restarts. Scans and writes simply take the `tree` mutex; the hot
//! path this type exists for is the point probe.

use std::sync::atomic::{AtomicU64, Ordering};

use molap_storage::util::fib_shard;
use molap_storage::{ExclusiveOptGuard, IoStats, OptLock, PageId, Result, MAX_RESTARTS};
use parking_lot::Mutex;

use std::sync::Arc;

use molap_storage::BufferPool;

use crate::node;
use crate::tree::BTree;

/// Version stripes per tree; a power of two so `fib_shard` can mask.
/// More stripes mean fewer false conflicts between a writer's path and
/// unrelated probes.
const STRIPES: usize = 64;

/// Bits of the packed meta word holding the root page id.
const ROOT_BITS: u32 = 48;

/// One probe attempt's outcome: finished with an answer, or a version
/// conflict that needs a restart.
enum Probe {
    Done(Option<u64>),
    Conflict,
}

/// A concurrently readable B+tree: serialized writers, optimistic
/// lock-free point probes. See the module docs for the protocol.
pub struct SharedBTree {
    /// Writer lock and authoritative tree state. The field name `tree`
    /// is load-bearing: it is the rank the workspace lock order (and
    /// molap-lint) knows this mutex by.
    tree: Mutex<BTree>,
    /// Page-version stripes, indexed by `fib_shard(pid)`. The field
    /// name `tree_v` is its lock-order rank.
    tree_v: Box<[OptLock]>,
    /// Packed `root | height << ROOT_BITS`, republished by every
    /// writer before its stripes unlock, so readers route from a
    /// current root without any lock.
    meta: AtomicU64,
    /// Entry-count mirror for lock-free [`SharedBTree::len`].
    len: AtomicU64,
    /// The tree's pool, cloned out so probes can fetch pages without
    /// touching the `tree` mutex.
    pool: Arc<BufferPool>,
}

fn pack_meta(root: PageId, height: u32) -> u64 {
    debug_assert!(root.0 < 1 << ROOT_BITS, "page id overflows meta word");
    (root.0 & ((1 << ROOT_BITS) - 1)) | (u64::from(height) << ROOT_BITS)
}

fn unpack_meta(meta: u64) -> (PageId, u32) {
    (
        PageId(meta & ((1 << ROOT_BITS) - 1)),
        (meta >> ROOT_BITS) as u32,
    )
}

impl SharedBTree {
    /// Wraps an existing tree for shared use.
    pub fn new(tree: BTree) -> SharedBTree {
        let meta = AtomicU64::new(pack_meta(tree.root(), tree.height()));
        let len = AtomicU64::new(tree.len());
        let pool = tree.pool().clone();
        SharedBTree {
            tree: Mutex::new(tree),
            tree_v: (0..STRIPES).map(|_| OptLock::new()).collect(),
            meta,
            len,
            pool,
        }
    }

    /// Unwraps back into the plain tree (e.g. to persist its meta).
    pub fn into_inner(self) -> BTree {
        self.tree.into_inner()
    }

    /// Runs `f` against the tree under the writer mutex — for scans,
    /// serialization, and anything else the lock-free probe does not
    /// cover.
    pub fn with_tree<R>(&self, f: impl FnOnce(&BTree) -> R) -> R {
        f(&self.tree.lock())
    }

    /// Number of entries (including duplicates), lock-free.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    /// True if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tree height, lock-free.
    pub fn height(&self) -> u32 {
        unpack_meta(self.meta.load(Ordering::Acquire)).1
    }

    fn stripe(&self, pid: PageId) -> &OptLock {
        // fib_shard masks to STRIPES, so the index is always in range.
        self.tree_v
            .get(fib_shard(pid.0, STRIPES))
            .unwrap_or(&self.tree_v[0])
    }

    /// Pins a stripe's version with no guard left live (I/O follows).
    fn pin_version(&self, pid: PageId) -> Option<(&OptLock, u64)> {
        let lock = self.stripe(pid);
        let seen = lock.begin_optimistic()?.confirm()?;
        Some((lock, seen))
    }

    // ------------------------------------------------------------- reads

    /// Returns the value of the first entry with `key`, if any —
    /// optimistically, without the `tree` mutex on the success path.
    pub fn get(&self, key: i64) -> Result<Option<u64>> {
        self.get_with(key, None)
    }

    /// [`SharedBTree::get`], recording the probe's outcome (reads /
    /// restarts / escalations) into `stats`.
    pub fn get_tracked(&self, key: i64, stats: &IoStats) -> Result<Option<u64>> {
        self.get_with(key, Some(stats))
    }

    fn get_with(&self, key: i64, stats: Option<&IoStats>) -> Result<Option<u64>> {
        let mut restarts = 0u32;
        loop {
            match self.try_descend(key) {
                Ok(Probe::Done(found)) => {
                    if let Some(stats) = stats {
                        stats.opt_btree(u64::from(restarts), false);
                    }
                    return Ok(found);
                }
                Ok(Probe::Conflict) => {
                    if restarts >= MAX_RESTARTS {
                        if let Some(stats) = stats {
                            stats.opt_btree(u64::from(restarts), true);
                        }
                        return self.tree.lock().get(key);
                    }
                    restarts += 1;
                    std::hint::spin_loop();
                }
                // An I/O error mid-race could be an artifact of a stale
                // route; re-run serialized so a real error is reported
                // deterministically (and a phantom one vanishes).
                Err(_) => {
                    if let Some(stats) = stats {
                        stats.opt_btree(u64::from(restarts), true);
                    }
                    return self.tree.lock().get(key);
                }
            }
        }
    }

    /// One optimistic descent: root meta → version-coupled internal
    /// levels → leaf run walk. Never blocks; never holds a guard
    /// across `pool.fetch`.
    fn try_descend(&self, key: i64) -> Result<Probe> {
        let pool = &self.pool;
        let meta = self.meta.load(Ordering::Acquire);
        let (root, height) = unpack_meta(meta);
        // Pin the root's version, then re-check the meta word: a writer
        // republishing the root would have bumped the old root's stripe
        // first, but the meta re-read also covers the initial load
        // racing a height change.
        let Some((mut lock, mut seen)) = self.pin_version(root) else {
            return Ok(Probe::Conflict);
        };
        if self.meta.load(Ordering::Acquire) != meta {
            return Ok(Probe::Conflict);
        }
        let mut pid = root;
        for _ in 0..height {
            let child = {
                let page = pool.fetch(pid)?;
                if !lock.still_valid(seen) || node::is_leaf(&page) {
                    return Ok(Probe::Conflict);
                }
                let idx = node::internal_scan_index(&page, key);
                node::internal_child(&page, idx)
            };
            // Version-couple: pin the child's version, then confirm the
            // parent (and so the pointer just followed) is unchanged.
            let Some((child_lock, child_seen)) = self.pin_version(child) else {
                return Ok(Probe::Conflict);
            };
            if !lock.still_valid(seen) {
                return Ok(Probe::Conflict);
            }
            (pid, lock, seen) = (child, child_lock, child_seen);
        }
        // Leaf level: walk the duplicate run rightward, hopping leaves
        // with the same version coupling as the descent.
        loop {
            let (done, next) = {
                let page = pool.fetch(pid)?;
                if !lock.still_valid(seen) || !node::is_leaf(&page) {
                    return Ok(Probe::Conflict);
                }
                let n = node::count(&page);
                let pos = node::leaf_lower_bound(&page, key);
                if pos < n {
                    let hit =
                        (node::leaf_key(&page, pos) == key).then(|| node::leaf_value(&page, pos));
                    (Some(hit), None)
                } else {
                    (None, node::next_leaf(&page))
                }
            };
            // Validate after the read: the latch made it atomic, the
            // version makes it current.
            if !lock.still_valid(seen) {
                return Ok(Probe::Conflict);
            }
            if let Some(hit) = done {
                return Ok(Probe::Done(hit));
            }
            let Some(next) = next else {
                return Ok(Probe::Done(None));
            };
            let Some((next_lock, next_seen)) = self.pin_version(next) else {
                return Ok(Probe::Conflict);
            };
            if !lock.still_valid(seen) {
                return Ok(Probe::Conflict);
            }
            (pid, lock, seen) = (next, next_lock, next_seen);
        }
    }

    /// Returns every value stored under `key`, in insertion order
    /// (serialized on the writer mutex; the lock-free path is the
    /// point probe).
    pub fn scan_eq(&self, key: i64) -> Result<Vec<u64>> {
        self.tree.lock().scan_eq(key)
    }

    /// All `(key, value)` entries with `lo <= key <= hi`, in key order.
    pub fn scan_range(&self, lo: i64, hi: i64) -> Result<Vec<(i64, u64)>> {
        self.tree.lock().scan_range(lo, hi)
    }

    // ------------------------------------------------------------ writes

    /// Inserts `(key, value)`; duplicate keys keep insertion order.
    pub fn insert(&self, key: i64, value: u64) -> Result<()> {
        let mut tree = self.tree.lock();
        // lint:allow(lock-io): the writer mutex deliberately spans the page walk and mutation — `tree` is what serializes structure changes, so its critical section is where the tree's page I/O lives
        let path = tree.insert_path(key)?;
        let guards = self.lock_stripes(&path);
        let res = tree.insert(key, value);
        self.publish_meta(&tree);
        drop(guards);
        res
    }

    /// Removes the first entry equal to `(key, value)`; returns whether
    /// one was found.
    pub fn remove(&self, key: i64, value: u64) -> Result<bool> {
        let mut tree = self.tree.lock();
        // lint:allow(lock-io): see `insert` — deletes walk and mutate pages under the writer mutex by design
        let path = tree.delete_path(key)?;
        let guards = self.lock_stripes(&path);
        // lint:allow(lock-io): see `insert` — the lazy-delete rewrite faults pages under the writer mutex by design
        let res = tree.delete(key, value);
        self.publish_meta(&tree);
        drop(guards);
        res
    }

    /// Exclusively locks the stripes covering `path`, in ascending
    /// stripe order (deduped), so overlapping writers always agree on
    /// acquisition order.
    fn lock_stripes(&self, path: &[PageId]) -> Vec<ExclusiveOptGuard<'_>> {
        let mut idxs: Vec<usize> = path.iter().map(|p| fib_shard(p.0, STRIPES)).collect();
        idxs.sort_unstable();
        idxs.dedup();
        idxs.iter()
            .filter_map(|&i| self.tree_v.get(i))
            .map(|tree_v| tree_v.lock_exclusive())
            .collect()
    }

    /// Republishes the packed root/height word and the length mirror.
    /// Must run while the writer's stripes are still held, so a reader
    /// that routes from the new meta can only validate against
    /// post-write versions.
    fn publish_meta(&self, tree: &BTree) {
        self.len.store(tree.len(), Ordering::Release);
        self.meta
            .store(pack_meta(tree.root(), tree.height()), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BTreeConfig;
    use molap_storage::{BufferPool, MemDisk};
    use std::sync::Arc;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 256))
    }

    fn small_config() -> BTreeConfig {
        BTreeConfig {
            max_leaf_entries: 4,
            max_internal_keys: 3,
        }
    }

    fn small_shared() -> SharedBTree {
        SharedBTree::new(BTree::create_with(pool(), small_config()).unwrap())
    }

    #[test]
    fn reads_and_writes_roundtrip() {
        let t = small_shared();
        assert!(t.is_empty());
        assert_eq!(t.get(7).unwrap(), None);
        for k in 0..100i64 {
            t.insert(k, (k * 2) as u64).unwrap();
        }
        assert_eq!(t.len(), 100);
        assert!(t.height() >= 2, "small fanout must split");
        for k in 0..100i64 {
            assert_eq!(t.get(k).unwrap(), Some((k * 2) as u64), "key {k}");
        }
        assert_eq!(t.get(100).unwrap(), None);
        assert!(t.remove(10, 20).unwrap());
        assert_eq!(t.get(10).unwrap(), None);
        assert_eq!(
            t.scan_range(8, 12).unwrap(),
            vec![(8, 16), (9, 18), (11, 22), (12, 24)]
        );
    }

    #[test]
    fn duplicate_runs_walk_leaves() {
        let t = small_shared();
        for round in 0..10u64 {
            for key in [7i64, 3, 7, 11] {
                t.insert(key, round * 100 + key as u64).unwrap();
            }
        }
        assert_eq!(t.scan_eq(7).unwrap().len(), 20);
        assert_eq!(t.get(7).unwrap(), Some(7), "first inserted duplicate");
        assert_eq!(t.get(5).unwrap(), None);
    }

    #[test]
    fn probes_bypass_the_writer_mutex() {
        let t = small_shared();
        for k in 0..50i64 {
            t.insert(k, k as u64).unwrap();
        }
        let stats = IoStats::new();
        // Hold the writer mutex across the probes: a probe that ever
        // took `tree` would deadlock here.
        let _m = t.tree.lock();
        for k in 0..50i64 {
            assert_eq!(t.get_tracked(k, &stats).unwrap(), Some(k as u64));
        }
        let snap = stats.snapshot();
        assert_eq!(snap.opt_btree_reads, 50);
        assert_eq!(snap.opt_btree_escalations, 0);
    }

    #[test]
    fn conflicting_probes_escalate_to_the_mutex() {
        let t = small_shared();
        for k in 0..10i64 {
            t.insert(k, k as u64).unwrap();
        }
        let stats = IoStats::new();
        // Hold the root's stripe exclusively on another thread (probing
        // from the holder itself would invert the writer's tree -> tree_v
        // order and trip the lock-order tracker): every descent
        // conflicts, burns its restart budget, and escalates to the
        // mutex path — which still answers correctly.
        let t = Arc::new(t);
        let root = unpack_meta(t.meta.load(Ordering::Acquire)).0;
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let (held_tx, held_rx) = std::sync::mpsc::channel::<()>();
        let holder = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                let _v = t.stripe(root).lock_exclusive();
                held_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            })
        };
        held_rx.recv().unwrap();
        assert_eq!(t.get_tracked(3, &stats).unwrap(), Some(3));
        release_tx.send(()).unwrap();
        holder.join().unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.opt_btree_reads, 1);
        assert_eq!(snap.opt_btree_escalations, 1);
        assert_eq!(snap.opt_btree_restarts, u64::from(MAX_RESTARTS));
    }

    #[test]
    fn concurrent_probes_match_the_mutex_oracle() {
        // N readers probe while a writer splits pages under them; every
        // validated read must match what the serialized oracle allows:
        // for key k the only possible answers are None (not yet
        // inserted) or k*10 (inserted), never garbage.
        let t = Arc::new(SharedBTree::new(
            BTree::create_with(pool(), small_config()).unwrap(),
        ));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|r| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let stats = IoStats::new();
                    let mut validated = 0u64;
                    let mut i = 0i64;
                    while !stop.load(Ordering::Relaxed) {
                        let k = (i * 7 + r) % 500;
                        i += 1;
                        let got = t.get_tracked(k, &stats).unwrap();
                        if let Some(v) = got {
                            assert_eq!(v, (k * 10) as u64, "torn read for key {k}");
                            validated += 1;
                        }
                    }
                    (validated, stats.snapshot())
                })
            })
            .collect();
        for k in 0..500i64 {
            t.insert(k, (k * 10) as u64).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let mut total_reads = 0;
        for r in readers {
            let (_, snap) = r.join().unwrap();
            total_reads += snap.opt_btree_reads;
        }
        assert!(total_reads > 0);
        // Quiescent: every key must now probe exactly.
        for k in 0..500i64 {
            assert_eq!(t.get(k).unwrap(), Some((k * 10) as u64));
        }
    }

    #[test]
    fn deletes_under_concurrent_probes_stay_consistent() {
        let t = Arc::new(SharedBTree::new(
            BTree::create_with(pool(), small_config()).unwrap(),
        ));
        for k in 0..200i64 {
            t.insert(k, k as u64).unwrap();
            t.insert(k, (k + 1000) as u64).unwrap();
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..2)
            .map(|r| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0i64;
                    while !stop.load(Ordering::Relaxed) {
                        let k = (i * 13 + r) % 200;
                        i += 1;
                        // Both values per key exist until the writer
                        // removes the first; whichever the probe sees
                        // must be one of the two.
                        if let Some(v) = t.get(k).unwrap() {
                            assert!(
                                v == k as u64 || v == (k + 1000) as u64,
                                "torn read {v} for key {k}"
                            );
                        }
                    }
                })
            })
            .collect();
        for k in 0..200i64 {
            assert!(t.remove(k, k as u64).unwrap());
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        for k in 0..200i64 {
            assert_eq!(t.get(k).unwrap(), Some((k + 1000) as u64));
        }
        assert_eq!(t.len(), 200);
    }

    #[test]
    fn meta_word_roundtrips() {
        let (root, height) = unpack_meta(pack_meta(PageId(123_456), 9));
        assert_eq!(root, PageId(123_456));
        assert_eq!(height, 9);
    }
}
