//! Paged B+tree on the SHORE-lite buffer pool.
//!
//! The OLAP Array ADT "contains ... a set of B-tree indices, one for
//! each dimension" mapping dimension key values to array index positions
//! (§3.1), and the selection algorithm (§4.2) probes per-attribute
//! B-trees to turn a selected value into a *list* of array indices. That
//! dictates the two requirements this tree is built around:
//!
//! * **duplicate keys** — an attribute value maps to many array indices,
//!   so equal keys are stored side by side and [`BTree::scan_eq`]
//!   returns all of them;
//! * **range scans** — leaves are chained, so ordered retrieval of a key
//!   interval is a single leaf walk.
//!
//! Keys are `i64`, values `u64`: the paper's test schema uses integer
//! dimension keys, and string-valued hierarchy attributes (`"AA1"` …)
//! are dictionary-encoded to integers by the data generator before they
//! reach an index.
//!
//! Deletion is implemented *lazily* (entries are removed from leaves
//! without rebalancing), the common practical trade-off for
//! OLAP-style append-mostly workloads; a bulk loader builds packed trees
//! from sorted input in one pass.
//!
//! # Example
//!
//! ```
//! use molap_btree::BTree;
//! use molap_storage::{BufferPool, MemDisk};
//! use std::sync::Arc;
//!
//! let pool = Arc::new(BufferPool::new(Arc::new(MemDisk::new()), 64));
//! let mut tree = BTree::create(pool).unwrap();
//! tree.insert(10, 100).unwrap();
//! tree.insert(10, 101).unwrap(); // duplicate key
//! tree.insert(20, 200).unwrap();
//! assert_eq!(tree.scan_eq(10).unwrap(), vec![100, 101]);
//! assert_eq!(tree.get(20).unwrap(), Some(200));
//! ```

#![forbid(unsafe_code)]

mod node;
mod shared;
mod tree;

pub use shared::SharedBTree;
pub use tree::{BTree, BTreeConfig};
