#!/usr/bin/env bash
# Full verification gate: build, tests, lints, formatting.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo test -q --workspace"
cargo test -q --workspace --offline

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> molap-lint --check . --json (repo-specific static analysis)"
# The JSON report (findings + per-rule counts + call-graph stats +
# wall time) is archived as a build artifact; the run must be clean
# AND the interprocedural engine must actually have analyzed the tree
# (a zero-function call graph would mean the walker silently skipped
# the sources).
cargo run -q -p molap-lint --offline -- --check . --json > target/molap-lint.json || true
grep -q '"findings":\[\]' target/molap-lint.json || {
  echo "verify: molap-lint reported findings (see target/molap-lint.json)" >&2
  exit 1
}
if grep -q '"functions":0' target/molap-lint.json; then
  echo "verify: molap-lint call graph saw zero functions" >&2
  exit 1
fi
echo "    archived target/molap-lint.json"

echo "==> molap-lint --check crates/lint/tests/corpus (must report findings)"
# The seeded-violation corpus keeps the lint honest: if the rules rot
# into always-green, this gate fails. Exit 1 means findings; anything
# else (0 = spuriously clean, 2 = I/O or usage error) is a failure.
corpus_status=0
cargo run -q -p molap-lint --offline -- --check crates/lint/tests/corpus \
  > /dev/null || corpus_status=$?
if [ "$corpus_status" -ne 1 ]; then
  echo "verify: expected molap-lint to exit 1 on the seeded corpus, got $corpus_status" >&2
  exit 1
fi

echo "==> cargo test -p molap-server --features lock-order-tracking"
cargo test -q -p molap-server --features lock-order-tracking --offline

echo "==> cargo test -p molap-core --features lock-order-tracking"
cargo test -q -p molap-core --features lock-order-tracking --offline

echo "==> bench_pr3 --smoke (parallel/caching bench smoke run)"
cargo run -q --release --offline -p molap-bench --bin bench_pr3 -- \
  --smoke --out target/BENCH_PR3.smoke.json > /dev/null

echo "==> bench_pr4 --smoke (prefetch pipeline: cold pipelined(4) <= cold sequential)"
cargo run -q --release --offline -p molap-bench --bin bench_pr4 -- \
  --smoke --out target/BENCH_PR4.smoke.json > /dev/null

echo "==> bench_pr5 --smoke (result cache: exact hit >= 10x cold, subsumption >= 3x)"
cargo run -q --release --offline -p molap-bench --bin bench_pr5 -- \
  --smoke --out target/BENCH_PR5.smoke.json > /dev/null

echo "==> bench_pr6 --smoke (writes: delta-maintained herd >= 3x invalidate-all)"
cargo run -q --release --offline -p molap-bench --bin bench_pr6 -- \
  --smoke --out target/BENCH_PR6.smoke.json > /dev/null

echo "==> bench_pr8 --smoke (optimistic reads >= 1.0x mutex at 1 thread; >= 1.5x at 4 when nproc >= 4)"
cargo run -q --release --offline -p molap-bench --bin bench_pr8 -- \
  --smoke --out target/BENCH_PR8.smoke.json > /dev/null

echo "==> bench_pr9 --smoke (diff-seq: streaming >= oracle, size <= 0.8x chunk-offset)"
cargo run -q --release --offline -p molap-bench --bin bench_pr9 -- \
  --smoke --out target/BENCH_PR9.smoke.json > /dev/null

echo "==> bench_pr10 --smoke (HBI >= 2x btree index lists at >=25% selectivity; auto <= 1.1x at points)"
cargo run -q --release --offline -p molap-bench --bin bench_pr10 -- \
  --smoke --out target/BENCH_PR10.smoke.json > /dev/null

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> verify OK"
