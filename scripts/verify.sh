#!/usr/bin/env bash
# Full verification gate: build, tests, lints, formatting.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test -q"
cargo test -q --offline

echo "==> cargo test -q --workspace"
cargo test -q --workspace --offline

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> verify OK"
