#!/usr/bin/env bash
# PR 3 performance gate: runs the sharded-pool / chunk-cache / parallel
# consolidation bench and writes BENCH_PR3.json at the repo root.
#
#   scripts/bench.sh            full run (enforces the 2x acceptance bar)
#   scripts/bench.sh --smoke    ~30x smaller dataset, 1 run per point
#
# Extra arguments are passed through to the bench binary (e.g.
# `--out /tmp/other.json`).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -q --release --offline -p molap-bench --bin bench_pr3 -- "$@"
