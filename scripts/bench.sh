#!/usr/bin/env bash
# Performance gates: the PR 3 sharded-pool / chunk-cache / parallel
# bench, the PR 4 prefetch-pipeline bench, the PR 5 result-cache /
# subsumption / coalescing bench, the PR 6 write-subsystem bench, the
# PR 8 optimistic-lock-coupling contention microbench, the PR 9
# diff-seq streaming-decode format matrix, and the PR 10 HBI
# crossover-selectivity sweep, writing BENCH_PR3.json ..
# BENCH_PR6.json and BENCH_PR8.json .. BENCH_PR10.json at the repo
# root.
#
#   scripts/bench.sh            full runs (enforce the acceptance bars)
#   scripts/bench.sh --smoke    ~30x smaller datasets (CI gate)
#
# Extra arguments are passed through to both bench binaries. `--out`
# would collide between the two; use the per-bench invocations below
# directly if you need custom output paths.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -q --release --offline -p molap-bench --bin bench_pr3 -- "$@"
cargo run -q --release --offline -p molap-bench --bin bench_pr4 -- "$@"
cargo run -q --release --offline -p molap-bench --bin bench_pr5 -- "$@"
cargo run -q --release --offline -p molap-bench --bin bench_pr6 -- "$@"
cargo run -q --release --offline -p molap-bench --bin bench_pr8 -- "$@"
cargo run -q --release --offline -p molap-bench --bin bench_pr9 -- "$@"
cargo run -q --release --offline -p molap-bench --bin bench_pr10 -- "$@"
