//! A persistent OLAP database: build once, reopen, query in SQL.
//!
//! Exercises the catalog (shadow-root checkpoints) and the SQL front
//! end, routing the same statement to the array engine or the StarJoin
//! depending on which object `FROM` names — the "storage transparency"
//! the paper lists as future work.
//!
//! ```sh
//! cargo run --example persistent_database
//! ```

use molap::array::ChunkFormat;
use molap::core::{Database, OlapArray, StarSchema};
use molap::datagen::{generate, AttrLayout, CubeSpec};

fn main() {
    let path = std::env::temp_dir().join(format!("molap-example-{}.db", std::process::id()));

    // ---- Session 1: load the warehouse --------------------------------
    {
        let db = Database::create(&path, 16 << 20).expect("create database");

        let cube = generate(&CubeSpec {
            dim_sizes: vec![30, 20, 12],
            level_cards: vec![vec![3, 2], vec![4, 2], vec![3, 2]],
            valid_cells: 2_000,
            seed: 42,
            n_measures: 1,
            independent_last_level: false,
            layout: AttrLayout::Blocked,
        })
        .expect("generate");

        let adt = OlapArray::build(
            db.pool().clone(),
            cube.dims.clone(),
            &[10, 10, 6],
            ChunkFormat::ChunkOffset,
            cube.cells.iter().cloned(),
            1,
        )
        .expect("build array");
        let schema = StarSchema::build(
            db.pool().clone(),
            cube.dims.clone(),
            cube.cells.iter().cloned(),
            1,
        )
        .expect("build star schema");

        db.save_olap_array("sales", &adt).expect("catalog array");
        db.save_star_schema("sales_rel", &schema)
            .expect("catalog schema");
        db.checkpoint().expect("checkpoint");
        println!(
            "session 1: loaded {} cells into {:?} and checkpointed\n",
            cube.len(),
            path.file_name().unwrap()
        );
    } // database closed

    // ---- Session 2: reopen and query ----------------------------------
    let db = Database::open(&path, 16 << 20).expect("reopen database");
    println!("session 2: catalog contains:");
    for (name, kind) in db.list() {
        println!("  {name:<12} {kind:?}");
    }

    let statement = "SELECT SUM(volume), dim0.h01, dim1.h11 \
                     FROM sales \
                     WHERE dim2.h21 IN (0, 2) \
                     GROUP BY dim0.h01, dim1.h11";
    println!("\n{statement}\n");
    let via_array = db.sql(statement, &["volume"]).expect("array query");
    print!("{}", via_array.to_table());

    // The same logical query against the relational copy: identical rows.
    let via_rel = db
        .sql(
            &statement.replace("FROM sales", "FROM sales_rel"),
            &["volume"],
        )
        .expect("relational query");
    assert_eq!(via_array, via_rel);
    println!("\narray engine and StarJoin returned identical results");

    // Point lookups still work through the reopened ADT.
    let adt = db.open_olap_array("sales").expect("open array");
    println!(
        "reopened array: {} valid cells, density {:.1}%",
        adt.valid_cells(),
        adt.array().density() * 100.0
    );

    let mut wal = path.as_os_str().to_owned();
    wal.push(".wal");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(std::path::PathBuf::from(wal)).ok();
}
