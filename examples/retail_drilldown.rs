//! Roll-up / drill-down over a dimension hierarchy — the §2 retail
//! example: stores form a `store → city → region` hierarchy; one
//! consolidation per hierarchy level answers successively coarser
//! questions from the same OLAP array.
//!
//! ```sh
//! cargo run --example retail_drilldown
//! ```

use std::sync::Arc;

use molap::array::ChunkFormat;
use molap::core::{DimGrouping, DimensionTable, OlapArray, Query};
use molap::storage::{BufferPool, MemDisk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // 24 stores in 6 cities in 2 regions; 30 products in 5 types.
    let n_stores = 24u32;
    let cities: Vec<i64> = (0..n_stores as i64).map(|s| s / 4).collect(); // 4 stores/city
    let regions: Vec<i64> = cities.iter().map(|c| c / 3).collect(); // 3 cities/region
    let mut store = DimensionTable::build(
        "store",
        &(0..n_stores as i64).collect::<Vec<_>>(),
        vec![("city", cities), ("region", regions)],
    )
    .unwrap();
    store
        .set_labels(
            0,
            vec![
                "Madison",
                "Milwaukee",
                "Chicago",
                "Seattle",
                "Portland",
                "Denver",
            ]
            .into_iter()
            .map(String::from)
            .collect(),
        )
        .unwrap();
    store
        .set_labels(1, vec!["Midwest".into(), "West".into()])
        .unwrap();

    let n_products = 30u32;
    let types: Vec<i64> = (0..n_products as i64).map(|p| p % 5).collect();
    let mut product = DimensionTable::build(
        "product",
        &(0..n_products as i64).collect::<Vec<_>>(),
        vec![("ptype", types)],
    )
    .unwrap();
    product
        .set_labels(
            0,
            vec!["grocery", "clothing", "electronics", "garden", "toys"]
                .into_iter()
                .map(String::from)
                .collect(),
        )
        .unwrap();

    // ~40% dense sales cube, seeded.
    let mut rng = StdRng::seed_from_u64(2024);
    let mut sales = Vec::new();
    for s in 0..n_stores as i64 {
        for p in 0..n_products as i64 {
            if rng.random_range(0..10) < 4 {
                sales.push((vec![s, p], vec![rng.random_range(1..500)]));
            }
        }
    }

    let pool = Arc::new(BufferPool::with_bytes(Arc::new(MemDisk::new()), 16 << 20));
    let adt = OlapArray::build(
        pool,
        vec![store.clone(), product.clone()],
        &[8, 10],
        ChunkFormat::ChunkOffset,
        sales.iter().cloned(),
        1,
    )
    .unwrap();
    println!(
        "cube: {} stores x {} products, {} valid cells ({:.0}% dense)\n",
        n_stores,
        n_products,
        adt.valid_cells(),
        adt.array().density() * 100.0
    );

    // Drill-down path: region -> city -> store, all crossed with ptype.
    for (label, grouping) in [
        ("region", DimGrouping::Level(1)),
        ("city", DimGrouping::Level(0)),
        ("store (finest)", DimGrouping::Key),
    ] {
        let q = Query::new(vec![grouping, DimGrouping::Drop]);
        let res = adt.consolidate(&q).unwrap();
        println!("SUM(volume) GROUP BY {label}: {} groups", res.rows().len());
        for row in res.rows().iter().take(6) {
            let name = match grouping {
                DimGrouping::Level(l) => store.label(l, row.keys[0]),
                _ => format!("store #{}", row.keys[0]),
            };
            println!("  {:<12} {}", name, row.values[0]);
        }
        if res.rows().len() > 6 {
            println!("  ... ({} more)", res.rows().len() - 6);
        }
        println!();
    }

    // Cross-tab at the middle level: city x ptype.
    let q = Query::new(vec![DimGrouping::Level(0), DimGrouping::Level(0)]);
    let res = adt.consolidate(&q).unwrap();
    println!("city x ptype cross-tab ({} cells):", res.rows().len());
    println!("{:<12} {:<12} volume", "city", "ptype");
    for row in res.rows().iter().take(10) {
        println!(
            "{:<12} {:<12} {}",
            store.label(0, row.keys[0]),
            product.label(0, row.keys[1]),
            row.values[0]
        );
    }
    println!("  ... ({} more)", res.rows().len().saturating_sub(10));

    // Consistency across levels: regions must sum to the global total.
    let global = adt
        .consolidate(&Query::new(vec![DimGrouping::Drop, DimGrouping::Drop]))
        .unwrap();
    let regions = adt
        .consolidate(&Query::new(vec![DimGrouping::Level(1), DimGrouping::Drop]))
        .unwrap();
    assert_eq!(global.total(), regions.total());
    println!(
        "\nroll-up invariant holds: region totals == global total == {}",
        global.total()
    );
}
