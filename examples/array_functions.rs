//! The OLAP Array ADT's function repertoire (§3.5): Read/Write, sum of
//! a subset, slicing — plus a look inside the storage layer
//! (chunk-offset compression, IndexToIndex arrays, I/O accounting).
//!
//! ```sh
//! cargo run --example array_functions
//! ```

use std::sync::Arc;

use molap::array::{ArrayBuilder, ChunkFormat, Shape};
use molap::storage::{BufferPool, MemDisk, PAGE_SIZE};

fn main() {
    let pool = Arc::new(BufferPool::with_bytes(Arc::new(MemDisk::new()), 16 << 20));

    // A 12x12x12 array in 6x6x6 chunks (8 chunks), ~10% dense:
    // cell (x,y,z) valid iff (x+y+z) % 10 == 0, value = x*100+y*10+z.
    let shape = Shape::new(vec![12, 12, 12], vec![6, 6, 6]).unwrap();
    let mut builder = ArrayBuilder::new(shape, 1, ChunkFormat::ChunkOffset);
    for x in 0..12u32 {
        for y in 0..12u32 {
            for z in 0..12u32 {
                if (x + y + z) % 10 == 0 {
                    builder
                        .add(&[x, y, z], &[(x * 100 + y * 10 + z) as i64])
                        .unwrap();
                }
            }
        }
    }
    let mut array = builder.build(pool.clone()).unwrap();

    println!(
        "array 12x12x12 in {} chunks of {} cells; {} valid cells ({:.1}% dense)",
        array.shape().num_chunks(),
        array.shape().chunk_cells(),
        array.valid_cells(),
        array.density() * 100.0
    );
    println!(
        "chunk-offset compressed: {} bytes logical, {} pages on disk\n",
        array.total_bytes(),
        array.total_pages()
    );

    // --- Read (§3.5) --------------------------------------------------
    println!("Read:");
    println!(
        "  a[1,4,5]  = {:?}  (1+4+5 = 10, valid)",
        array.get(&[1, 4, 5]).unwrap()
    );
    println!(
        "  a[1,4,6]  = {:?}  (invalid cell)",
        array.get(&[1, 4, 6]).unwrap()
    );

    // --- Write (§3.5) -------------------------------------------------
    array.set(&[1, 4, 6], &[9999]).unwrap();
    println!(
        "Write: a[1,4,6] <- 9999, now {:?}",
        array.get(&[1, 4, 6]).unwrap()
    );
    array.set(&[1, 4, 6], &[1]).unwrap();
    println!(
        "       a[1,4,6] <- 1 (overwrite), now {:?}\n",
        array.get(&[1, 4, 6]).unwrap()
    );

    // --- Sum of a subset (§3.5) ----------------------------------------
    // Chunks disjoint from the box are never read: watch the I/O.
    pool.clear().unwrap();
    let before = pool.stats().snapshot();
    let corner = array.sum_region(&[0, 0, 0], &[5, 5, 5]).unwrap();
    let io = pool.stats().snapshot().since(&before);
    println!(
        "sum_region([0,0,0]..=[5,5,5]) = {:?} — {} physical reads (1 of 8 chunks)",
        corner, io.physical_reads
    );
    let all = array.sum_region(&[0, 0, 0], &[11, 11, 11]).unwrap();
    println!("sum_region(whole array)      = {all:?}\n");

    // --- Slice (§3.5) ---------------------------------------------------
    let slice = array.slice(&[3, 3, 3], &[8, 8, 8], pool.clone()).unwrap();
    println!(
        "slice([3,3,3]..=[8,8,8]): {}x{}x{} array with {} valid cells",
        slice.shape().dims()[0],
        slice.shape().dims()[1],
        slice.shape().dims()[2],
        slice.valid_cells()
    );
    // Slice coordinates are rebased: slice[0,0,0] == array[3,3,3].
    assert_eq!(
        slice.get(&[0, 0, 0]).unwrap(),
        array.get(&[3, 3, 3]).unwrap()
    );
    println!(
        "  slice[0,0,0] == array[3,3,3] == {:?}\n",
        slice.get(&[0, 0, 0]).unwrap()
    );

    // --- Compression formats side by side ------------------------------
    println!("same data in each chunk format:");
    for format in [
        ChunkFormat::ChunkOffset,
        ChunkFormat::DenseLzw,
        ChunkFormat::Dense,
    ] {
        let shape = Shape::new(vec![12, 12, 12], vec![6, 6, 6]).unwrap();
        let mut b = ArrayBuilder::new(shape, 1, format);
        for x in 0..12u32 {
            for y in 0..12u32 {
                for z in 0..12u32 {
                    if (x + y + z) % 10 == 0 {
                        b.add(&[x, y, z], &[(x * 100 + y * 10 + z) as i64]).unwrap();
                    }
                }
            }
        }
        let a = b.build(pool.clone()).unwrap();
        println!(
            "  {:<12} {:>8} bytes logical, {:>3} pages ({} KB on disk)",
            format!("{format:?}"),
            a.total_bytes(),
            a.total_pages(),
            a.total_pages() * PAGE_SIZE as u64 / 1024
        );
    }
}
