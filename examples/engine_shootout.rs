//! Engine shootout: the paper's three competitors side by side on one
//! synthetic cube — the array algorithms (§4.1/§4.2), the StarJoin
//! operator (§4.3), and bitmap indexes + fact file (§4.5) — with
//! wall-clock and buffer-pool I/O for each.
//!
//! ```sh
//! cargo run --release --example engine_shootout
//! ```

use std::sync::Arc;
use std::time::Instant;

use molap::array::ChunkFormat;
use molap::core::{
    bitmap_consolidate, starjoin_consolidate, AttrRef, DimGrouping, JoinBitmapIndexes, OlapArray,
    Query, Selection, StarSchema,
};
use molap::datagen::{generate, AttrLayout, CubeSpec};
use molap::storage::{BufferPool, MemDisk, PAGE_SIZE};

fn main() {
    // A 24x24x24x40 cube at 5% density (scaled-down Data Set 2).
    let spec = CubeSpec {
        dim_sizes: vec![24, 24, 24, 40],
        level_cards: vec![vec![4, 2], vec![4, 2], vec![4, 2], vec![4, 2]],
        valid_cells: 27_648, // 5%
        seed: 1998,
        n_measures: 1,
        independent_last_level: false,
        layout: AttrLayout::Scattered,
    }
    .with_selection_cardinality(4);
    let cube = generate(&spec).unwrap();
    println!(
        "cube {:?}, {} valid cells ({:.1}% dense)\n",
        spec.dim_sizes,
        cube.len(),
        spec.density() * 100.0
    );

    let pool = Arc::new(BufferPool::with_bytes(Arc::new(MemDisk::new()), 16 << 20));
    let adt = OlapArray::build(
        pool.clone(),
        cube.dims.clone(),
        &[12, 12, 12, 10],
        ChunkFormat::ChunkOffset,
        cube.cells.iter().cloned(),
        1,
    )
    .unwrap();
    let schema = StarSchema::build(
        pool.clone(),
        cube.dims.clone(),
        cube.cells.iter().cloned(),
        1,
    )
    .unwrap();
    let indexes = JoinBitmapIndexes::build(pool.clone(), &schema).unwrap();

    println!(
        "storage: array {} KB, fact file {} KB, bitmap indexes {} KB\n",
        adt.array_pages() * PAGE_SIZE as u64 / 1024,
        schema.fact.bytes_on_disk() / 1024,
        indexes.total_pages() * PAGE_SIZE as u64 / 1024,
    );

    // Query 1: full consolidation. Query 2: + selection on each dim.
    // Query 3: selection + group-by on three of four dims.
    let q1 = Query::new(vec![DimGrouping::Level(0); 4]);
    let mut q2 = q1.clone();
    for d in 0..4 {
        q2 = q2.with_selection(d, Selection::eq(AttrRef::Level(1), 1));
    }
    let mut q3 = Query::new(vec![
        DimGrouping::Level(0),
        DimGrouping::Level(0),
        DimGrouping::Level(0),
        DimGrouping::Drop,
    ]);
    for d in 0..3 {
        q3 = q3.with_selection(d, Selection::eq(AttrRef::Level(1), 2));
    }

    for (name, query) in [
        ("Query 1 (consolidation)", &q1),
        ("Query 2 (4-dim selection)", &q2),
        ("Query 3 (3-dim selection)", &q3),
    ] {
        println!("{name}:");
        let mut results = Vec::new();
        type EngineRun<'a> = Box<dyn Fn() -> molap::core::ConsolidationResult + 'a>;
        let runs: Vec<(&str, EngineRun)> = vec![
            ("array", Box::new(|| adt.consolidate(query).unwrap())),
            (
                "starjoin",
                Box::new(|| starjoin_consolidate(&schema, query).unwrap()),
            ),
            (
                "bitmap+factfile",
                Box::new(|| bitmap_consolidate(&schema, &indexes, query).unwrap()),
            ),
        ];
        for (engine, run) in runs {
            pool.clear().unwrap();
            let before = pool.stats().snapshot();
            let start = Instant::now();
            let res = run();
            let ms = start.elapsed().as_secs_f64() * 1e3;
            let io = pool.stats().snapshot().since(&before);
            println!(
                "  {engine:<16} {ms:>8.2} ms   {:>6} physical reads   {} rows",
                io.physical_reads,
                res.rows().len()
            );
            results.push(res);
        }
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "engines disagree!"
        );
        println!("  all engines returned identical results\n");
    }
}
