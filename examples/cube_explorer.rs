//! The CUBE operator: every GROUP BY subset of a consolidation in one
//! array pass plus lattice projections (the authors' [ZDN97] companion
//! technique), with a parallel-scan comparison.
//!
//! ```sh
//! cargo run --release --example cube_explorer
//! ```

use std::sync::Arc;
use std::time::Instant;

use molap::array::ChunkFormat;
use molap::core::{compute_cube, consolidate_parallel, DimGrouping, OlapArray, Query};
use molap::datagen::{generate, AttrLayout, CubeSpec};
use molap::storage::{BufferPool, MemDisk};

fn main() {
    let spec = CubeSpec {
        dim_sizes: vec![36, 30, 24, 20],
        level_cards: vec![vec![6, 2], vec![5, 2], vec![4, 2], vec![4, 2]],
        valid_cells: 40_000,
        seed: 7,
        n_measures: 1,
        independent_last_level: false,
        layout: AttrLayout::Blocked,
    };
    let cube = generate(&spec).expect("generate");
    let pool = Arc::new(BufferPool::with_bytes(Arc::new(MemDisk::new()), 16 << 20));
    let adt = OlapArray::build(
        pool,
        cube.dims.clone(),
        &[12, 10, 8, 10],
        ChunkFormat::ChunkOffset,
        cube.cells.iter().cloned(),
        1,
    )
    .expect("build");
    println!(
        "cube {:?}, {} valid cells ({:.1}% dense)\n",
        spec.dim_sizes,
        adt.valid_cells(),
        adt.array().density() * 100.0
    );

    // CUBE over all four h1 attributes: 16 group-bys.
    let query = Query::new(vec![DimGrouping::Level(0); 4]);

    let start = Instant::now();
    let slices = compute_cube(&adt, &query).expect("compute cube");
    let cube_ms = start.elapsed().as_secs_f64() * 1e3;

    // The naive alternative: 16 independent consolidations.
    let start = Instant::now();
    for slice in &slices {
        let mut group_by = Vec::new();
        let mut gi = 0;
        for g in &query.group_by {
            group_by.push(match g {
                DimGrouping::Drop => DimGrouping::Drop,
                g => {
                    let active = slice.mask[gi];
                    gi += 1;
                    if active {
                        *g
                    } else {
                        DimGrouping::Drop
                    }
                }
            });
        }
        let direct = adt.consolidate(&Query::new(group_by)).expect("direct");
        assert_eq!(
            &direct, &slice.result,
            "CUBE slice must equal direct GROUP BY"
        );
    }
    let naive_ms = start.elapsed().as_secs_f64() * 1e3;

    println!("all {} group-bys of the 4-attribute lattice:", slices.len());
    println!("{:<28} {:>8}", "grouping (1=grouped)", "rows");
    for slice in &slices {
        let mask: String = slice
            .mask
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        println!("{mask:<28} {:>8}", slice.result.rows().len());
    }
    println!(
        "\nCUBE operator: {cube_ms:.1} ms   (16 independent consolidations: {naive_ms:.1} ms, \
         same results verified)"
    );

    // Parallel scan of the finest consolidation.
    println!("\nparallel consolidation of the finest group-by:");
    let sequential = adt.consolidate(&query).expect("seq");
    for threads in [1, 2, 4, 8] {
        let start = Instant::now();
        let res = consolidate_parallel(&adt, &query, threads).expect("parallel");
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(res, sequential);
        println!("  {threads} thread(s): {ms:>7.1} ms");
    }

    // Memory-bounded mode: identical rows under a tiny result budget.
    let bounded = adt
        .consolidate_bounded(&query, 64)
        .expect("bounded consolidation");
    assert_eq!(bounded, sequential);
    println!(
        "\nmemory-bounded consolidation (64-cell bands) matches: {} rows",
        bounded.rows().len()
    );
}
