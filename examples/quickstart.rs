//! Quickstart: build a tiny retail cube in both physical designs and
//! run the same consolidation on each.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use molap::array::ChunkFormat;
use molap::core::{
    starjoin_consolidate, AttrRef, DimGrouping, DimensionTable, OlapArray, Query, Selection,
    StarSchema,
};
use molap::storage::{BufferPool, MemDisk};

fn main() {
    // --- The retail sales schema from the paper's running example ----
    //
    //   Sales  (pid, sid, volume)             <- the measure
    //   Product(pid, type)                    <- dimension + hierarchy
    //   Store  (sid, city)                    <- dimension + hierarchy
    //
    // Attribute values are dictionary-encoded integers; we attach the
    // human-readable labels for display.
    let mut product =
        DimensionTable::build("product", &[0, 1, 2, 3], vec![("ptype", vec![0, 0, 1, 1])]).unwrap();
    product
        .set_labels(0, vec!["clothing".into(), "electronics".into()])
        .unwrap();

    let mut store =
        DimensionTable::build("store", &[0, 1, 2], vec![("city", vec![0, 0, 1])]).unwrap();
    store
        .set_labels(0, vec!["Madison".into(), "Chicago".into()])
        .unwrap();

    // Valid cells: (product key, store key) -> volume. Sparse: not
    // every product sells in every store.
    let sales: Vec<(Vec<i64>, Vec<i64>)> = vec![
        (vec![0, 0], vec![12]), // clothing sold in Madison
        (vec![0, 2], vec![5]),
        (vec![1, 1], vec![8]),
        (vec![2, 0], vec![20]), // electronics in Madison
        (vec![3, 2], vec![7]),
    ];

    // --- Physical design 1: the OLAP Array ADT ----------------------
    let pool = Arc::new(BufferPool::with_bytes(Arc::new(MemDisk::new()), 16 << 20));
    let adt = OlapArray::build(
        pool.clone(),
        vec![product.clone(), store.clone()],
        &[2, 2], // 2x2 chunks
        ChunkFormat::ChunkOffset,
        sales.iter().cloned(),
        1,
    )
    .unwrap();

    // --- Physical design 2: star schema (fact file + dims) ----------
    let schema = StarSchema::build(
        pool,
        vec![product.clone(), store.clone()],
        sales.iter().cloned(),
        1,
    )
    .unwrap();

    // --- SELECT ptype, city, SUM(volume) GROUP BY ptype, city -------
    let query = Query::new(vec![DimGrouping::Level(0), DimGrouping::Level(0)]);
    let from_array = adt.consolidate(&query).unwrap();
    let from_tables = starjoin_consolidate(&schema, &query).unwrap();
    assert_eq!(from_array, from_tables, "engines agree cell for cell");

    println!("SELECT ptype, city, SUM(volume) GROUP BY ptype, city;\n");
    for row in from_array.rows() {
        println!(
            "  {:<12} {:<8} -> {}",
            product.label(0, row.keys[0]),
            store.label(0, row.keys[1]),
            row.values[0]
        );
    }

    // --- ... WHERE city = 'Madison' ----------------------------------
    let madison = store.code_of_label(0, "Madison").unwrap();
    let query = Query::new(vec![DimGrouping::Level(0), DimGrouping::Drop])
        .with_selection(1, Selection::eq(AttrRef::Level(0), madison));
    let res = adt.consolidate(&query).unwrap();
    assert_eq!(res, starjoin_consolidate(&schema, &query).unwrap());

    println!("\nSELECT ptype, SUM(volume) WHERE city = 'Madison' GROUP BY ptype;\n");
    for row in res.rows() {
        println!(
            "  {:<12} -> {}",
            product.label(0, row.keys[0]),
            row.values[0]
        );
    }

    // --- ADT point access (§3.5 Read function) ----------------------
    println!("\npoint reads through the ADT's key B-trees:");
    println!(
        "  sales[product=2, store=0] = {:?}",
        adt.get_by_keys(&[2, 0]).unwrap()
    );
    println!(
        "  sales[product=1, store=0] = {:?}",
        adt.get_by_keys(&[1, 0]).unwrap()
    );

    println!(
        "\narray footprint: {} valid cells in {} page(s), density {:.0}%",
        adt.valid_cells(),
        adt.array_pages(),
        adt.array().density() * 100.0
    );
}
