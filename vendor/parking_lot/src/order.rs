//! Runtime lock-order tracking (the `lock-order-tracking` feature).
//!
//! Every live [`crate::Mutex`] gets a process-unique id on first
//! acquisition. Each thread keeps a stack of the locks it currently
//! holds; a *blocking* acquisition while holding other locks records
//! the directed edges `held → requested` into a global graph, each
//! edge remembering the `#[track_caller]` source locations of the two
//! acquisitions that established it. Before an edge is inserted the
//! graph is checked for a path in the opposite direction — if one
//! exists the new acquisition inverts an established order and two
//! threads interleaving those paths could deadlock, so the tracker
//! panics immediately (while the thread can still make progress)
//! instead of letting the schedule decide.
//!
//! Ids are handed out by a monotone counter, never reused, so a
//! dropped and reallocated `Mutex` cannot alias an old node in the
//! graph.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicUsize, Ordering};

type Site = &'static Location<'static>;

/// The two acquisition sites that established a recorded edge: the
/// lock already held was taken at `held_at`, the new lock at
/// `acquired_at`.
#[derive(Clone, Copy)]
struct Edge {
    held_at: Site,
    acquired_at: Site,
}

#[derive(Default)]
struct Graph {
    /// `(from, to)` → the first pair of sites that established it.
    edges: HashMap<(usize, usize), Edge>,
    /// Adjacency view of `edges`, for reachability checks.
    successors: HashMap<usize, Vec<usize>>,
}

impl Graph {
    fn insert(&mut self, from: usize, to: usize, edge: Edge) {
        if self.edges.insert((from, to), edge).is_none() {
            self.successors.entry(from).or_default().push(to);
        }
    }

    /// Depth-first search for a path `from → … → to`; returns the
    /// first edge on the path (enough to report where the established
    /// order came from).
    fn find_path(&self, from: usize, to: usize) -> Option<(usize, usize)> {
        let mut stack: Vec<(usize, Option<(usize, usize)>)> = vec![(from, None)];
        let mut seen = vec![from];
        while let Some((node, first_edge)) = stack.pop() {
            for &next in self.successors.get(&node).map_or(&[][..], Vec::as_slice) {
                let via = first_edge.unwrap_or((node, next));
                if next == to {
                    return Some(via);
                }
                if !seen.contains(&next) {
                    seen.push(next);
                    stack.push((next, Some(via)));
                }
            }
        }
        None
    }
}

static NEXT_ID: AtomicUsize = AtomicUsize::new(1);
static GRAPH: std::sync::Mutex<Option<Graph>> = std::sync::Mutex::new(None);

thread_local! {
    /// Stack of locks this thread currently holds.
    static HELD: RefCell<Vec<(usize, Site)>> = const { RefCell::new(Vec::new()) };
}

/// Returns the lock's process-unique id, assigning one on first use.
pub(crate) fn lock_id(slot: &AtomicUsize) -> usize {
    let current = slot.load(Ordering::Relaxed);
    if current != 0 {
        return current;
    }
    let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => fresh,
        Err(winner) => winner,
    }
}

/// Registered hold of a lock; popped from the thread's stack on drop.
pub struct HeldToken {
    id: usize,
}

impl HeldToken {
    /// The held lock's process-unique id (for the condvar-wait check).
    pub(crate) fn id(&self) -> usize {
        self.id
    }
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&(id, _)| id == self.id) {
                held.remove(pos);
            }
        });
    }
}

/// Records edges from every held lock to `id`, panicking if any edge
/// closes a cycle. Call *before* blocking on the lock, so an inverted
/// order panics instead of deadlocking when the schedule is unlucky.
pub(crate) fn blocking_acquire(id: usize, site: Site) -> HeldToken {
    HELD.with(|held| {
        let held = held.borrow();
        if held.is_empty() {
            return;
        }
        let mut graph = GRAPH
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let graph = graph.get_or_insert_with(Graph::default);
        for &(held_id, held_site) in held.iter() {
            if held_id == id {
                continue;
            }
            if let Some((via_from, via_to)) = graph.find_path(id, held_id) {
                let prior = graph.edges[&(via_from, via_to)];
                panic!(
                    "lock-order cycle: acquiring lock #{id} at {site} while holding lock \
                     #{held_id} (acquired at {held_site}) inverts the established order \
                     #{via_from} -> #{via_to}, recorded when a thread holding the lock \
                     acquired at {} then acquired the lock at {}",
                    prior.held_at, prior.acquired_at,
                );
            }
            graph.insert(
                held_id,
                id,
                Edge {
                    held_at: held_site,
                    acquired_at: site,
                },
            );
        }
    });
    HELD.with(|held| held.borrow_mut().push((id, site)));
    HeldToken { id }
}

/// Public hook for external blocking lock primitives (spinlocks,
/// version-word exclusives) that live outside this crate but must
/// still appear in the runtime ABBA graph. The caller embeds an
/// `AtomicUsize` identity slot (zero-initialised) in its lock; this
/// registers the acquisition exactly like [`crate::Mutex::lock`] does —
/// edges from every held lock, cycle check, panic on inversion — and
/// the returned [`HeldToken`] pops the hold when dropped. Call it
/// *before* spinning or parking, so an inverted escalation order
/// panics instead of deadlocking.
#[track_caller]
pub fn external_blocking_acquire(slot: &AtomicUsize) -> HeldToken {
    blocking_acquire(lock_id(slot), Location::caller())
}

/// Registers a hold without recording order edges: a `try_lock` never
/// blocks, so it cannot participate in a deadlock as the *waiting*
/// side, but locks acquired while it is held still edge from it.
pub(crate) fn nonblocking_acquire(id: usize, site: Site) -> HeldToken {
    HELD.with(|held| held.borrow_mut().push((id, site)));
    HeldToken { id }
}

/// Panics if the thread is about to park on a condvar while holding
/// any lock other than `waited` — the one the wait atomically
/// releases. The wait keeps every *other* held lock locked for its
/// whole (unbounded) duration, so a thread that needs one of them in
/// order to reach `notify` can never run: the runtime analog of
/// `molap-lint`'s `lock-blocking` rule, with the same waived-guard
/// exemption.
pub(crate) fn blocking_wait(waited: usize, site: Site) {
    HELD.with(|held| {
        let held = held.borrow();
        if let Some(&(held_id, held_site)) = held.iter().find(|&&(id, _)| id != waited) {
            panic!(
                "blocking wait under a lock: parking on a condvar at {site} while holding \
                 lock #{held_id} (acquired at {held_site}); the wait only releases the \
                 waited mutex #{waited}, so a thread that needs #{held_id} to signal can \
                 deadlock against this one",
            );
        }
    });
}

#[cfg(test)]
mod tests {
    use crate::Mutex;

    #[test]
    fn abba_panics_with_both_sites() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // establishes a -> b
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock(); // b -> a closes the cycle
        }))
        .expect_err("inverted acquisition must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order cycle"), "got: {msg}");
        assert!(msg.contains("order.rs"), "sites missing: {msg}");
    }

    #[test]
    fn external_locks_join_the_graph() {
        // An out-of-crate primitive registered via the public hook
        // (molap-storage's OptLock escalation path) edges into the same
        // graph as real mutexes, in both directions.
        use std::sync::atomic::AtomicUsize;
        let m = Mutex::new(());
        let slot = AtomicUsize::new(0);
        {
            let _g = m.lock();
            let _e = super::external_blocking_acquire(&slot); // m -> ext
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _e = super::external_blocking_acquire(&slot);
            let _g = m.lock(); // ext -> m closes the cycle
        }))
        .expect_err("inverted external acquisition must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order cycle"), "got: {msg}");
    }

    #[test]
    fn consistent_order_is_fine() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        for _ in 0..2 {
            let _ga = a.lock();
            let _gb = b.lock();
        }
    }

    #[test]
    fn wait_under_another_lock_panics() {
        let outer = Mutex::new(());
        let inner = Mutex::new(());
        let cv = crate::Condvar::new();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _outer = outer.lock();
            let mut g = inner.lock();
            cv.wait_for(&mut g, std::time::Duration::from_millis(1));
        }))
        .expect_err("condvar wait while holding another mutex must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("blocking wait under a lock"), "got: {msg}");
    }

    #[test]
    fn wait_on_the_only_held_lock_is_fine() {
        let m = std::sync::Arc::new(Mutex::new(false));
        let cv = std::sync::Arc::new(crate::Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            let mut done = m2.lock();
            while !*done {
                cv2.wait(&mut done); // waived: the waited guard itself
            }
        });
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
