//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the subset of `parking_lot`'s API it actually uses:
//! [`Mutex`], [`RwLock`], [`Condvar`], and their guards. Everything is
//! implemented over `std::sync` with parking_lot's *non-poisoning*
//! semantics: a panic while holding a lock releases it instead of
//! poisoning it for every later acquirer.
//!
//! # `lock-order-tracking`
//!
//! With the opt-in `lock-order-tracking` cargo feature, every
//! *blocking* [`Mutex`] acquisition records a per-thread acquisition
//! edge (held lock → newly requested lock) into a global lock-order
//! graph. If a requested edge would close a cycle — the classic ABBA
//! deadlock shape — the acquiring thread panics *before* blocking,
//! reporting the acquisition sites (`#[track_caller]` locations) of
//! both the new inverted edge and the previously recorded edge.
//!
//! The tracker is deliberately scoped to `Mutex`: the buffer pool's
//! per-frame `RwLock` latches are reused for different pages over
//! time, so frame-latch edges would alias unrelated orderings and
//! produce false cycles. Frame-latch ordering is instead covered by
//! the static `molap-lint` lock-discipline rule and the pool's pin
//! protocol. `try_lock` never blocks and therefore never deadlocks,
//! so it registers the hold without recording an edge.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

#[cfg(feature = "lock-order-tracking")]
pub mod order;

/// A mutual-exclusion lock that does not poison on panic.
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lock-order-tracking")]
    order_id: std::sync::atomic::AtomicUsize,
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    #[cfg(feature = "lock-order-tracking")]
    _order: order::HeldToken,
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "lock-order-tracking")]
            order_id: std::sync::atomic::AtomicUsize::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            #[cfg(feature = "lock-order-tracking")]
            _order: order::blocking_acquire(
                order::lock_id(&self.order_id),
                std::panic::Location::caller(),
            ),
            inner: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Attempts to acquire the lock without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                #[cfg(feature = "lock-order-tracking")]
                _order: order::nonblocking_acquire(
                    order::lock_id(&self.order_id),
                    std::panic::Location::caller(),
                ),
                inner: g,
            }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                #[cfg(feature = "lock-order-tracking")]
                _order: order::nonblocking_acquire(
                    order::lock_id(&self.order_id),
                    std::panic::Location::caller(),
                ),
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock that does not poison on panic.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Attempts to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable paired with [`Mutex`] guards.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    ///
    /// Under `lock-order-tracking` the hold registration is kept for
    /// the duration of the wait: the thread is parked, so it cannot
    /// acquire other locks, and on wakeup it holds the mutex again.
    /// Waiting while holding any *other* tracked mutex panics — the
    /// wait releases only this guard's lock, so the others stay held
    /// for the wait's unbounded duration and a thread that needs one
    /// of them to reach `notify` deadlocks.
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        #[cfg(feature = "lock-order-tracking")]
        order::blocking_wait(guard._order.id(), std::panic::Location::caller());
        // Temporarily move the std guard out to satisfy the std API.
        replace_guard(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or `timeout` elapses; returns true if the
    /// wait timed out. Bounded waits still serialize behind the held
    /// locks, so the wait-under-lock check applies to them too.
    #[track_caller]
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        #[cfg(feature = "lock-order-tracking")]
        order::blocking_wait(guard._order.id(), std::panic::Location::caller());
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, result) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            g
        });
        timed_out
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Runs `f` on the std guard inside `guard`, replacing it with the
/// guard `f` returns.
fn replace_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    // SAFETY: the slot is never observed empty. `ptr::read` moves the
    // std guard out and `ptr::write` installs the replacement before
    // control returns to the caller, and `f` (a condvar wait with
    // non-poisoning recovery) does not unwind into the empty window.
    unsafe {
        let slot = &mut guard.inner as *mut std::sync::MutexGuard<'a, T>;
        let inner = std::ptr::read(slot);
        std::ptr::write(slot, f(inner));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0); // still lockable
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }
}
