//! Offline shim for the `proptest` crate.
//!
//! The build environment has no crates.io access; this vendored crate
//! reimplements the subset of proptest used by the workspace's property
//! tests: the [`strategy::Strategy`] trait with `prop_map`, ranges,
//! tuples, [`collection::vec`], [`option::of`], [`bool::ANY`],
//! [`arbitrary::any`], `Just`, the [`proptest!`] / [`prop_oneof!`] /
//! `prop_assert*` macros, and a deterministic per-test RNG.
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the case number and seed; rerunning reproduces it deterministically),
//! and `prop_assert*` panics immediately instead of returning a
//! `TestCaseError`.

#![forbid(unsafe_code)]

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Runner configuration. Only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// The RNG handed to strategies.
    pub struct TestRng(StdRng);

    impl TestRng {
        /// A generator seeded deterministically from a test's path, or
        /// from `PROPTEST_SEED` if set (for replaying explorations).
        pub fn deterministic(test_path: &str) -> Self {
            let mut seed = match std::env::var("PROPTEST_SEED") {
                Ok(v) => v.parse().unwrap_or(0xC0FFEE),
                Err(_) => 0xC0FFEE,
            };
            // FNV-1a over the test path decorrelates sibling tests.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            seed ^= h;
            TestRng(StdRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Re-export so `ProptestConfig` reads naturally at use sites.
pub use test_runner::Config as ProptestConfig;

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice among alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        variants: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Builds a uniform union over the given variants.
        ///
        /// # Panics
        /// Panics if `variants` is empty.
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            Union::new_weighted(variants.into_iter().map(|s| (1, s)).collect())
        }

        /// Builds a union picking variants in proportion to weight.
        ///
        /// # Panics
        /// Panics if `variants` is empty or all weights are zero.
        pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight: u64 = variants.iter().map(|&(w, _)| w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! needs positive total weight");
            Union {
                variants,
                total_weight,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.random_range(0..self.total_weight);
            for (weight, strategy) in &self.variants {
                if pick < *weight as u64 {
                    return strategy.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weighted pick within total weight")
        }
    }

    /// `&str` patterns act as regex-like string strategies, as in
    /// upstream proptest. This shim supports the subset: literal
    /// characters, `.` / `\PC` (any printable, non-control char),
    /// `\d` / `\w` / `\s` classes, `[a-z0-9_]`-style classes, and the
    /// quantifiers `{lo,hi}`, `{n}`, `*`, `+`, `?` applied to the
    /// preceding atom.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )+};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// The canonical strategy.
        type Strategy: Strategy<Value = Self>;
        /// Returns the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Whole-domain strategy for an integer type.
    pub struct FullRange<T>(std::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullRange(std::marker::PhantomData)
                }
            }
        )+};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        type Strategy = crate::bool::Any;
        fn arbitrary() -> Self::Strategy {
            crate::bool::Any
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// Fair-coin boolean strategy.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive-exclusive element-count bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// Strategy for `Option<S::Value>` (50% `None`).
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of`: `None` or a generated `Some`.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod string {
    //! Regex-subset string generation backing `&str` strategies.

    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// One generatable pattern element.
    enum Atom {
        /// A fixed character.
        Literal(char),
        /// Any printable non-control character (`.`, `\PC`).
        Printable,
        /// ASCII digit (`\d`).
        Digit,
        /// ASCII word character (`\w`).
        Word,
        /// ASCII whitespace (`\s`).
        Space,
        /// An explicit class: single chars plus inclusive ranges.
        Class(Vec<char>, Vec<(char, char)>),
    }

    fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
        match atom {
            Atom::Literal(c) => *c,
            Atom::Printable => {
                // Mostly ASCII printable; occasionally a multi-byte char
                // so byte-offset bugs get exercised.
                if rng.random_range(0..8usize) == 0 {
                    ['é', 'λ', '→', '漢', '🙂'][rng.random_range(0..5usize)]
                } else {
                    char::from_u32(rng.random_range(0x20u32..0x7F)).unwrap()
                }
            }
            Atom::Digit => char::from_u32(rng.random_range(0x30u32..0x3A)).unwrap(),
            Atom::Word => {
                let pool = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
                pool[rng.random_range(0..pool.len())] as char
            }
            Atom::Space => [' ', '\t', '\n'][rng.random_range(0..3usize)],
            Atom::Class(singles, ranges) => {
                let n = singles.len() + ranges.len();
                let i = rng.random_range(0..n.max(1));
                if i < singles.len() {
                    singles[i]
                } else {
                    let (lo, hi) = ranges[i - singles.len()];
                    char::from_u32(rng.random_range(lo as u32..=hi as u32)).unwrap_or(lo)
                }
            }
        }
    }

    /// Generates one string matching `pattern`.
    ///
    /// # Panics
    /// Panics on pattern constructs outside the supported subset.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Printable,
                '\\' => match chars.next() {
                    Some('P') => {
                        // Only \PC (printable) is supported.
                        assert_eq!(chars.next(), Some('C'), "unsupported \\P class");
                        Atom::Printable
                    }
                    Some('d') => Atom::Digit,
                    Some('w') => Atom::Word,
                    Some('s') => Atom::Space,
                    Some(esc) => Atom::Literal(esc),
                    None => panic!("dangling escape in pattern {pattern:?}"),
                },
                '[' => {
                    let mut singles = Vec::new();
                    let mut ranges = Vec::new();
                    loop {
                        match chars.next() {
                            Some(']') => break,
                            Some(lo) => {
                                if chars.peek() == Some(&'-') {
                                    chars.next();
                                    let hi = chars.next().expect("unterminated class range");
                                    ranges.push((lo, hi));
                                } else {
                                    singles.push(lo);
                                }
                            }
                            None => panic!("unterminated class in pattern {pattern:?}"),
                        }
                    }
                    Atom::Class(singles, ranges)
                }
                lit => Atom::Literal(lit),
            };
            // Optional quantifier on the atom just parsed.
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for q in chars.by_ref() {
                        if q == '}' {
                            break;
                        }
                        spec.push(q);
                    }
                    match spec.split_once(',') {
                        Some((a, b)) => (
                            a.parse().expect("bad quantifier"),
                            b.parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n: usize = spec.parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            let n = if lo == hi {
                lo
            } else {
                rng.random_range(lo..=hi)
            };
            for _ in 0..n {
                out.push(sample_atom(&atom, rng));
            }
        }
        // Keep the RNG moving even for empty outputs.
        let _ = rng.next_u64();
        out
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    /// Alias so `prop::collection::vec(..)` style paths work.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, running each body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let __strats = ($($s,)+);
                let __path = concat!(module_path!(), "::", stringify!($name));
                let mut __rng = $crate::test_runner::TestRng::deterministic(__path);
                for __case in 0..__config.cases {
                    let ($($p,)+) =
                        $crate::strategy::Strategy::generate(&__strats, &mut __rng);
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(payload) = __result {
                        eprintln!(
                            "proptest: {} failed at case {}/{} (deterministic seed; \
                             rerun reproduces it)",
                            __path, __case, __config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Choice among strategies producing the same value type; arms are
/// either bare strategies (uniform) or `weight => strategy`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vec_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("shim::smoke");
        let strat = (
            1u32..5,
            crate::collection::vec(-3i64..3, 0..10),
            crate::option::of(0usize..2),
        );
        for _ in 0..500 {
            let (a, v, o) = strat.generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!(v.len() < 10);
            assert!(v.iter().all(|x| (-3..3).contains(x)));
            if let Some(u) = o {
                assert!(u < 2);
            }
        }
    }

    #[test]
    fn oneof_and_map_cover_all_arms() {
        let mut rng = crate::test_runner::TestRng::deterministic("shim::oneof");
        let strat = prop_oneof![Just("SUM"), Just("MIN"), (0u8..3).prop_map(|_| "N")];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns(x in 0u32..10, mut v in crate::collection::vec(0i64..5, 2..4)) {
            prop_assert!(x < 10);
            v.push(0);
            prop_assert!(v.len() >= 3 && v.len() <= 4);
        }

        #[test]
        fn exact_vec_len(bytes in crate::collection::vec(any::<u8>(), 4)) {
            prop_assert_eq!(bytes.len(), 4);
        }
    }

    proptest! {
        #[test]
        fn default_config_single_param(b in crate::bool::ANY) {
            prop_assert!(b as u8 <= 1);
        }
    }
}
