//! Offline shim for the `crossbeam` crate.
//!
//! The build environment has no crates.io access; this vendored crate
//! provides the one API the workspace uses — [`thread::scope`] with
//! crossbeam's signature (spawn closures receive a scope argument, the
//! outer call returns a `Result`) — implemented over
//! `std::thread::scope`.

#![forbid(unsafe_code)]

pub mod thread {
    use std::any::Any;

    /// The value passed to every spawned closure. Crossbeam passes the
    /// scope itself so workers can spawn nested threads; this shim
    /// supports only closures that ignore the argument (`|_| ...`),
    /// which is all the workspace uses.
    pub struct NestedScope(());

    /// A scope handed to the `scope` closure, from which threads are
    /// spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread running `f`.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle(self.inner.spawn(move || f(&NestedScope(()))))
        }
    }

    /// Creates a scope in which borrowed-data threads can be spawned.
    /// All spawned threads are joined before this returns. Returns
    /// `Ok(r)` with the closure's result; panics in unjoined threads
    /// propagate (matching crossbeam closely enough for callers that
    /// join every handle).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4];
            let total = super::scope(|scope| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|c| scope.spawn(move |_| c.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 10);
        }
    }
}
