//! Offline shim for the `rand` crate (0.9 API subset).
//!
//! The build environment has no crates.io access; this vendored crate
//! implements the surface the workspace uses: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], [`Rng::random_range`] /
//! [`Rng::random_bool`], and [`seq::SliceRandom::shuffle`]. The
//! generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for equal seeds (what the datagen contract requires), though its
//! streams differ from upstream `rand`'s `StdRng`.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed; equal seeds give equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $u:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                // Rejection sampling to avoid modulo bias.
                let zone = <$u>::MAX - <$u>::MAX % span;
                loop {
                    let draw = rng.next_u64() as $u;
                    if draw < zone {
                        return ((self.start as $u).wrapping_add(draw % span)) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u).wrapping_add(1);
                if span == 0 {
                    // Full domain: every draw is uniform.
                    return rng.next_u64() as $t;
                }
                let zone = <$u>::MAX - <$u>::MAX % span;
                loop {
                    let draw = rng.next_u64() as $u;
                    if draw < zone {
                        return ((start as $u).wrapping_add(draw % span)) as $t;
                    }
                }
            }
        }
    )+};
}

impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Slice extensions: random shuffling.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::SampleRange::sample(0..=i, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::SampleRange::sample(0..self.len(), rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.random_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.random_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.random_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&v));
            let u: usize = rng.random_range(1..100);
            assert!((1..100).contains(&u));
            let w: u8 = rng.random_range(0..=255);
            let _ = w;
        }
    }

    #[test]
    fn range_endpoints_are_reached() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.random_range(0..3usize)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "49! permutations; identity is ~impossible");
        assert!(v.choose(&mut rng).is_some());
    }

    #[test]
    fn bool_probability_sanity() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
