//! Offline shim for the `criterion` crate.
//!
//! The build environment has no crates.io access; this vendored crate
//! provides the benchmark API surface the workspace uses (groups,
//! `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! throughput annotation, and the `criterion_group!`/`criterion_main!`
//! macros) backed by a simple timer: per benchmark it runs a short
//! warm-up, then `sample_size` samples, and reports the median sample
//! with min/max, plus derived throughput when annotated.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export for benchmark bodies that import it from criterion.
pub use std::hint::black_box;

/// Target measuring time per sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// How batched setup costs are amortized (ignored by the shim's timer;
/// setup is always excluded from measurement).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Units processed per iteration, for derived rates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Elements per iteration.
    Elements(u64),
}

/// A benchmark's display identifier.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// The timing context handed to benchmark closures.
pub struct Bencher {
    /// Nanoseconds per iteration for each collected sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, called in a loop.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: how many iterations fill the per-sample target?
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_TARGET / 4 || iters >= 1 << 20 {
                let per_sample = (iters as f64 * SAMPLE_TARGET.as_nanos() as f64
                    / elapsed.as_nanos().max(1) as f64) as u64;
                iters = per_sample.clamp(1, 1 << 24);
                break;
            }
            iters *= 4;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` on inputs built by `setup`; setup time is
    /// excluded from measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.sample_size.max(1) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn human_time(nanos: f64) -> String {
    if nanos < 1e3 {
        format!("{nanos:.1} ns")
    } else if nanos < 1e6 {
        format!("{:.2} µs", nanos / 1e3)
    } else if nanos < 1e9 {
        format!("{:.2} ms", nanos / 1e6)
    } else {
        format!("{:.2} s", nanos / 1e9)
    }
}

fn report(path: &str, samples: &mut [f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{path:<40} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    let rate = match throughput {
        Some(Throughput::Bytes(b)) => {
            format!("  {:>10}/s", human_bytes(b as f64 / (median / 1e9)))
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.0} elem/s", n as f64 / (median / 1e9))
        }
        None => String::new(),
    };
    println!(
        "{path:<40} median {:>10}  [{} .. {}]{rate}",
        human_time(median),
        human_time(lo),
        human_time(hi),
    );
}

fn human_bytes(bytes_per_s: f64) -> String {
    if bytes_per_s < 1024.0 {
        format!("{bytes_per_s:.0} B")
    } else if bytes_per_s < 1024.0 * 1024.0 {
        format!("{:.1} KiB", bytes_per_s / 1024.0)
    } else if bytes_per_s < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.1} MiB", bytes_per_s / (1024.0 * 1024.0))
    } else {
        format!("{:.1} GiB", bytes_per_s / (1024.0 * 1024.0 * 1024.0))
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        let sample_size = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let sample_size = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        run_one(&id.into().0, sample_size, None, f);
    }
}

fn run_one(
    path: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    report(path, &mut b.samples, throughput);
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates following benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let path = format!("{}/{}", self.name, id.into().0);
        run_one(&path, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let path = format!("{}/{}", self.name, id.into().0);
        run_one(&path, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &5u64, |b, &x| {
            b.iter_batched(
                || vec![x; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        criterion_group!(benches, quick);
        benches();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).0, "f/3");
        assert_eq!(BenchmarkId::from_parameter("array").0, "array");
    }
}
